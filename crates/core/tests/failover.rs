//! Engine crash + journaled recovery: targeted failover scenarios.
//!
//! The chaos sweep fuzzes these paths; this suite pins the specific
//! shapes the recovery protocol promises to survive:
//!
//! * a crash mid-dispatch (work in flight, completions racing the outage),
//! * a second crash landing during the recovery window (era fencing),
//! * a crash whose journal store is blacked out at restart (replay
//!   backoff, then recovery or attributed dead-letter),
//! * `restart_after == 0` (instant restart — the degenerate outage).
//!
//! Every scenario must end with conservation
//! (`sent == completed + dead_lettered + shed`), no live invocation
//! state, and every dead letter carrying exactly one attributed reason —
//! the exactly-once contract under control-plane faults.

use faasflow_core::{
    ClientConfig, Cluster, ClusterConfig, EngineCrash, EngineTarget, FaultPlan, JournalConfig,
    RunReport, ScheduleMode, StorageFault, StorageFaultKind, TraceEvent,
};
use faasflow_sim::{SimDuration, SimTime};
use faasflow_wdl::{FunctionProfile, Step, Workflow};

fn workflow() -> Workflow {
    Workflow::steps(
        "Failover",
        Step::sequence(vec![
            Step::task("ingest", FunctionProfile::with_millis(60, 1 << 20)),
            Step::foreach("work", FunctionProfile::with_millis(80, 1 << 19), 4),
            Step::task("merge", FunctionProfile::with_millis(30, 0)),
        ]),
    )
}

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

struct Scenario {
    mode: ScheduleMode,
    crashes: Vec<EngineCrash>,
    storage_faults: Vec<StorageFault>,
    journal: bool,
    invocations: u32,
}

fn run(s: Scenario) -> (RunReport, Vec<TraceEvent>) {
    let mut cluster = Cluster::new(ClusterConfig {
        mode: s.mode,
        faastore: s.mode == ScheduleMode::WorkerSp,
        workers: 3,
        trace: true,
        fault: FaultPlan {
            engine_crashes: s.crashes,
            storage_faults: s.storage_faults,
            ..FaultPlan::default()
        },
        journal: JournalConfig {
            enabled: s.journal,
            ..JournalConfig::default()
        },
        ..ClusterConfig::default()
    })
    .expect("valid config");
    cluster
        .register(
            &workflow(),
            ClientConfig::ClosedLoop {
                invocations: s.invocations,
            },
        )
        .expect("registers");
    let end = cluster.run_until_idle();
    assert!(end > SimTime::ZERO);
    let trace = cluster.take_trace();
    (cluster.report(), trace)
}

/// The exactly-once contract: every invocation leaves through one
/// terminal door, nothing stays live, and every dead letter has exactly
/// one attributed reason.
fn assert_exactly_once(report: &RunReport) {
    for (name, wf) in &report.workflows {
        assert_eq!(
            wf.sent,
            wf.completed + wf.dead_lettered + wf.shed,
            "{name}: sent {} != completed {} + dead_lettered {} + shed {}",
            wf.sent,
            wf.completed,
            wf.dead_lettered,
            wf.shed
        );
    }
    assert_eq!(report.live_invocation_states, 0, "leaked invocation state");
    let f = &report.faults;
    assert_eq!(
        f.dead_letter_retries_exhausted
            + f.dead_letter_crash_orphan
            + f.dead_letter_journal_unrecoverable,
        f.dead_letters,
        "dead-letter reasons don't sum: {f:?}"
    );
    let r = &report.recovery;
    assert_eq!(
        r.engine_crashes,
        r.master_engine_crashes + r.worker_engine_crashes,
        "crash split doesn't sum: {r:?}"
    );
}

#[test]
fn master_crash_mid_dispatch_recovers_every_invocation() {
    let (report, trace) = run(Scenario {
        mode: ScheduleMode::MasterSp,
        crashes: vec![EngineCrash {
            target: EngineTarget::Master,
            at: ms(30), // first invocation's entry is executing
            restart_after: ms(500),
        }],
        storage_faults: vec![],
        journal: true,
        invocations: 6,
    });
    assert_exactly_once(&report);
    let r = &report.recovery;
    assert_eq!(r.engine_crashes, 1);
    assert_eq!(r.master_engine_crashes, 1);
    assert_eq!(r.engine_recoveries, 1);
    assert!(r.journal_appends > 0, "journal never written: {r:?}");
    assert!(r.journal_replays >= 1, "restart never replayed: {r:?}");
    assert!(
        r.engine_downtime_secs >= 0.5,
        "downtime below restart delay: {r:?}"
    );
    // Work raced the outage: something terminal still happened for all.
    let wf = report.workflow("Failover");
    assert_eq!(wf.completed + wf.dead_lettered, 6);
    // The outage is visible in the trace, bracketed crash -> recovery.
    let crashed = trace
        .iter()
        .position(|e| matches!(e, TraceEvent::EngineCrashed { worker: None, .. }));
    let recovered = trace
        .iter()
        .position(|e| matches!(e, TraceEvent::EngineRecovered { worker: None, .. }));
    assert!(crashed.is_some() && recovered > crashed);
}

#[test]
fn worker_crash_mid_dispatch_recovers_every_invocation() {
    let (report, trace) = run(Scenario {
        mode: ScheduleMode::WorkerSp,
        crashes: vec![EngineCrash {
            target: EngineTarget::Worker(0),
            at: ms(30),
            restart_after: ms(500),
        }],
        storage_faults: vec![],
        journal: true,
        invocations: 6,
    });
    assert_exactly_once(&report);
    let r = &report.recovery;
    assert_eq!(r.engine_crashes, 1);
    assert_eq!(r.worker_engine_crashes, 1);
    assert_eq!(r.engine_recoveries, 1);
    let wf = report.workflow("Failover");
    assert_eq!(wf.completed + wf.dead_lettered, 6);
    assert!(trace.iter().any(|e| matches!(
        e,
        TraceEvent::EngineRecovered {
            worker: Some(_),
            ..
        }
    )));
}

#[test]
fn second_crash_during_recovery_window_is_fenced() {
    // The second crash lands right after the first restart fires, while
    // redispatched work is back in flight; era fencing must keep the two
    // restart chains from interleaving.
    let (report, _) = run(Scenario {
        mode: ScheduleMode::MasterSp,
        crashes: vec![
            EngineCrash {
                target: EngineTarget::Master,
                at: ms(30),
                restart_after: ms(400),
            },
            EngineCrash {
                target: EngineTarget::Master,
                at: ms(450),
                restart_after: ms(300),
            },
        ],
        storage_faults: vec![],
        journal: true,
        invocations: 6,
    });
    assert_exactly_once(&report);
    let r = &report.recovery;
    assert_eq!(r.engine_crashes, 2, "both crashes must take effect: {r:?}");
    assert_eq!(r.engine_recoveries, 2, "both outages must end: {r:?}");
    let wf = report.workflow("Failover");
    assert_eq!(wf.completed + wf.dead_lettered, 6);
}

#[test]
fn crash_while_already_down_is_ignored() {
    // The second crash fires while the engine is still down; it must be
    // swallowed (an already-dead engine cannot die again) and must not
    // orphan the pending restart chain.
    let (report, _) = run(Scenario {
        mode: ScheduleMode::MasterSp,
        crashes: vec![
            EngineCrash {
                target: EngineTarget::Master,
                at: ms(30),
                restart_after: ms(600),
            },
            EngineCrash {
                target: EngineTarget::Master,
                at: ms(200), // inside the first outage
                restart_after: ms(100),
            },
        ],
        storage_faults: vec![],
        journal: true,
        invocations: 4,
    });
    assert_exactly_once(&report);
    let r = &report.recovery;
    assert_eq!(r.engine_crashes, 1, "down engine crashed again: {r:?}");
    assert_eq!(r.engine_recoveries, 1);
}

#[test]
fn journal_blackout_at_restart_backs_off_then_recovers() {
    // The store is black from before the crash until well past the
    // restart instant: replay cannot start, backs off, and succeeds once
    // the blackout lifts. No invocation may be lost to the gap.
    let (report, _) = run(Scenario {
        mode: ScheduleMode::MasterSp,
        crashes: vec![EngineCrash {
            target: EngineTarget::Master,
            at: ms(100),
            restart_after: ms(200), // restart at 300ms, mid-blackout
        }],
        storage_faults: vec![StorageFault {
            at: ms(50),
            duration: ms(1000), // lifts at 1050ms
            kind: StorageFaultKind::Blackout,
        }],
        journal: true,
        invocations: 4,
    });
    assert_exactly_once(&report);
    let r = &report.recovery;
    assert_eq!(r.engine_crashes, 1);
    assert_eq!(r.engine_recoveries, 1);
    assert!(
        r.replay_backoffs > 0,
        "replay should have hit the blackout: {r:?}"
    );
    let wf = report.workflow("Failover");
    assert_eq!(wf.completed + wf.dead_lettered, 4);
}

#[test]
fn zero_restart_delay_is_a_blip() {
    let (report, _) = run(Scenario {
        mode: ScheduleMode::MasterSp,
        crashes: vec![EngineCrash {
            target: EngineTarget::Master,
            at: ms(30),
            restart_after: SimDuration::ZERO,
        }],
        storage_faults: vec![],
        journal: true,
        invocations: 4,
    });
    assert_exactly_once(&report);
    let r = &report.recovery;
    assert_eq!(r.engine_crashes, 1);
    assert_eq!(r.engine_recoveries, 1);
    let wf = report.workflow("Failover");
    assert_eq!(wf.completed + wf.dead_lettered, 4);
}

#[test]
fn crash_without_journal_still_terminates_everything() {
    // Journaling off: an admitted-but-unstarted invocation caught in the
    // crash has no durable witness and must be dead-lettered as a crash
    // orphan — not leaked.
    let (report, _) = run(Scenario {
        mode: ScheduleMode::MasterSp,
        crashes: vec![EngineCrash {
            target: EngineTarget::Master,
            at: ms(30),
            restart_after: ms(500),
        }],
        storage_faults: vec![],
        journal: false,
        invocations: 6,
    });
    assert_exactly_once(&report);
    let r = &report.recovery;
    assert_eq!(r.engine_crashes, 1);
    assert_eq!(r.journal_appends, 0, "journal off must not write: {r:?}");
    assert_eq!(r.journal_replays, 0);
}

#[test]
fn worker_sp_crash_without_journal_still_terminates_everything() {
    let (report, _) = run(Scenario {
        mode: ScheduleMode::WorkerSp,
        crashes: vec![EngineCrash {
            target: EngineTarget::Worker(1),
            at: ms(100),
            restart_after: ms(400),
        }],
        storage_faults: vec![],
        journal: false,
        invocations: 6,
    });
    assert_exactly_once(&report);
    assert_eq!(report.recovery.journal_appends, 0);
}

#[test]
fn engine_crashes_off_is_bit_identical_to_baseline() {
    // The whole fault-tolerance layer must be invisible when unused:
    // a run with an empty engine-crash plan and the journal disabled is
    // byte-identical to one that never knew the feature existed.
    let baseline = || {
        let mut cluster = Cluster::new(ClusterConfig {
            mode: ScheduleMode::WorkerSp,
            faastore: true,
            workers: 3,
            ..ClusterConfig::default()
        })
        .expect("valid config");
        cluster
            .register(&workflow(), ClientConfig::ClosedLoop { invocations: 5 })
            .expect("registers");
        cluster.run_until_idle();
        serde_json::to_string(&cluster.report()).expect("serializes")
    };
    assert_eq!(baseline(), baseline());
}
