//! QoS-triggered partition iterations (§4.1.2).

use faasflow_core::{ClientConfig, Cluster, ClusterConfig};
use faasflow_sim::SimDuration;
use faasflow_wdl::{FunctionProfile, Step, Workflow};

fn slow_workflow() -> Workflow {
    Workflow::steps(
        "q",
        Step::sequence(vec![
            Step::task("a", FunctionProfile::with_millis(200, 16 << 20)),
            Step::task("b", FunctionProfile::with_millis(200, 0)),
        ]),
    )
}

#[test]
fn qos_violations_force_partition_iterations() {
    let config = ClusterConfig {
        // Impossible target: every invocation violates it.
        qos_target: Some(SimDuration::from_millis(1)),
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(config).expect("valid config");
    cluster
        .register(
            &slow_workflow(),
            ClientConfig::ClosedLoop { invocations: 10 },
        )
        .expect("registers");
    cluster.run_until_idle();
    let (_, runs) = cluster.partition_wall_time();
    // Initial partition + one per completed (rate-limited) violation.
    assert!(
        runs >= 10,
        "every violating completion must trigger an iteration, got {runs}"
    );
    assert_eq!(cluster.report().workflow("q").completed, 10);
}

#[test]
fn satisfied_qos_never_repartitions() {
    let config = ClusterConfig {
        qos_target: Some(SimDuration::from_secs(30)),
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(config).expect("valid config");
    cluster
        .register(
            &slow_workflow(),
            ClientConfig::ClosedLoop { invocations: 10 },
        )
        .expect("registers");
    cluster.run_until_idle();
    let (_, runs) = cluster.partition_wall_time();
    assert_eq!(runs, 1, "only the registration-time partition");
}

#[test]
fn qos_iterations_use_collected_feedback() {
    // After a QoS-triggered repartition the DAG weights come from observed
    // p99 latencies; the run must remain correct and deterministic.
    let run = || {
        let config = ClusterConfig {
            qos_target: Some(SimDuration::from_millis(100)),
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::new(config).expect("valid config");
        cluster
            .register(
                &slow_workflow(),
                ClientConfig::ClosedLoop { invocations: 15 },
            )
            .expect("registers");
        cluster.run_until_idle();
        cluster.report()
    };
    let a = run();
    assert_eq!(a.workflow("q").completed, 15);
    assert_eq!(a, run(), "QoS iterations preserve determinism");
}
