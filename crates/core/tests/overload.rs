//! Boundary tests for the overload-protection subsystem: admission
//! control / shedding, the remote-store circuit breaker, hedged exec
//! retries and pool-to-scheduler backpressure. Each test pins one corner
//! of the feature matrix (zero retry budget + hedging, breaker during a
//! storage blackout, per-policy shed attribution, WorkerSP-vs-MasterSP
//! backpressure asymmetry) and always re-checks the conservation
//! invariant `sent == completed + dead_lettered + shed`.

use faasflow_container::NodeCaps;
use faasflow_core::{
    AdmissionConfig, BackpressureConfig, BreakerConfig, ClientConfig, Cluster, ClusterConfig,
    FaultPlan, HedgeConfig, OverloadConfig, RunReport, ScheduleMode, ShedPolicy, StorageFault,
    StorageFaultKind,
};
use faasflow_sim::SimDuration;
use faasflow_wdl::{FunctionProfile, Step, Workflow};

/// Every invocation that entered the system must leave through exactly
/// one terminal door once the cluster drains.
fn assert_conserved(report: &RunReport) {
    let mut sent_total = 0;
    for (name, wf) in &report.workflows {
        assert_eq!(
            wf.sent,
            wf.completed + wf.dead_lettered + wf.shed,
            "{name}: sent {} != completed {} + dead_lettered {} + shed {}",
            wf.sent,
            wf.completed,
            wf.dead_lettered,
            wf.shed
        );
        sent_total += wf.sent;
    }
    assert_eq!(report.overload.admitted, sent_total);
    assert_eq!(report.live_invocation_states, 0, "stuck invocation state");
}

/// Fan-out heavy enough to overfill a small worker's admission queue.
fn saturating_workflow(fan: u32) -> Workflow {
    Workflow::steps(
        "Saturate",
        Step::sequence(vec![
            Step::task("split", FunctionProfile::with_millis(40, 2 << 20)),
            Step::foreach("work", FunctionProfile::with_millis(120, 1 << 20), fan),
            Step::task("merge", FunctionProfile::with_millis(30, 0)),
        ]),
    )
}

fn run(config: ClusterConfig, wf: &Workflow, invocations: u32) -> RunReport {
    let mut cluster = Cluster::new(config).expect("valid config");
    cluster
        .register(wf, ClientConfig::ClosedLoop { invocations })
        .expect("registers");
    cluster.run_until_idle();
    cluster.report()
}

/// `max_exec_retries = 0` plus hedging: the hedge is the *only* second
/// chance an instance gets, and the run must still drain cleanly with
/// first-winner accounting (every launched hedge resolves as a win or a
/// loss, never both, never neither).
#[test]
fn zero_exec_retries_with_hedging_drains_cleanly() {
    let config = ClusterConfig {
        mode: ScheduleMode::WorkerSp,
        faastore: true,
        workers: 4,
        max_exec_retries: 0,
        exec_failure_rate: 0.05,
        overload: OverloadConfig {
            hedge: Some(HedgeConfig {
                delay: SimDuration::from_millis(700),
                adaptive: None,
            }),
            ..OverloadConfig::default()
        },
        ..ClusterConfig::default()
    };
    let wf = Workflow::steps(
        "Straggler",
        Step::sequence(vec![
            Step::task("prep", FunctionProfile::with_millis(50, 4 << 20)),
            Step::foreach(
                "crunch",
                FunctionProfile::with_millis(1000, 1 << 20).exec_variation(0.5),
                6,
            ),
            Step::task("merge", FunctionProfile::with_millis(40, 0)),
        ]),
    );
    let report = run(config, &wf, 12);

    assert_conserved(&report);
    let o = &report.overload;
    assert!(o.hedges_launched > 0, "no hedges fired: {o:?}");
    assert_eq!(
        o.hedge_wins + o.hedge_losses,
        o.hedges_launched,
        "every hedge must resolve exactly once: {o:?}"
    );
    assert_eq!(report.workflow("Straggler").sent, 12);
    assert!(report.workflow("Straggler").completed > 0);
}

/// A storage blackout must trip the breaker (the PR1 backoff path and the
/// breaker see the same failures), and once the blackout lifts the
/// half-open probes must close it again so the tail of the run completes.
#[test]
fn breaker_trips_during_blackout_and_recovers() {
    let config = ClusterConfig {
        mode: ScheduleMode::MasterSp,
        faastore: false,
        workers: 4,
        fault: FaultPlan {
            storage_faults: vec![StorageFault {
                at: SimDuration::from_secs(2),
                duration: SimDuration::from_secs(3),
                kind: StorageFaultKind::Blackout,
            }],
            ..FaultPlan::default()
        },
        overload: OverloadConfig {
            breaker: Some(BreakerConfig {
                failure_threshold: 2,
                ..BreakerConfig::default()
            }),
            ..OverloadConfig::default()
        },
        ..ClusterConfig::default()
    };
    let report = run(config, &saturating_workflow(8), 16);

    assert_conserved(&report);
    let o = &report.overload;
    assert!(
        o.breaker_opens >= 1,
        "blackout never tripped breaker: {o:?}"
    );
    assert!(
        o.breaker_fast_fails >= 1,
        "open window refused nothing: {o:?}"
    );
    assert!(
        o.breaker_closes >= 1,
        "breaker never recovered after the blackout: {o:?}"
    );
    assert!(report.workflow("Saturate").completed > 0);
}

/// Each shed policy attributes its drops to its own counter, and two
/// same-seed runs of an overloaded cluster stay bit-identical.
#[test]
fn shed_policies_are_deterministic_and_attributed() {
    for policy in [
        ShedPolicy::RejectNewest,
        ShedPolicy::RejectOldest,
        ShedPolicy::DeadlineAware,
    ] {
        let config = || ClusterConfig {
            mode: ScheduleMode::WorkerSp,
            faastore: true,
            workers: 2,
            node_caps: NodeCaps {
                cores: 2,
                ..NodeCaps::default()
            },
            qos_target: Some(SimDuration::from_secs(5)),
            overload: OverloadConfig {
                admission: Some(AdmissionConfig {
                    queue_capacity: 2,
                    policy,
                }),
                ..OverloadConfig::default()
            },
            ..ClusterConfig::default()
        };
        let a = run(config(), &saturating_workflow(10), 8);
        let b = run(config(), &saturating_workflow(10), 8);
        assert_eq!(
            serde_json::to_string(&a).expect("serializes"),
            serde_json::to_string(&b).expect("serializes"),
            "{policy:?}: same-seed shed runs diverged"
        );

        assert_conserved(&a);
        let o = &a.overload;
        assert!(o.shed > 0, "{policy:?}: queue never overflowed: {o:?}");
        let attributed = match policy {
            ShedPolicy::RejectNewest => o.shed_newest,
            ShedPolicy::RejectOldest => o.shed_oldest,
            ShedPolicy::DeadlineAware => o.shed_deadline,
        };
        assert_eq!(
            attributed, o.shed,
            "{policy:?}: sheds must land on that policy's counter: {o:?}"
        );
    }
}

/// Priority classes reorder `DeadlineAware` shedding: on overflow the scan
/// drops the lowest class first, so a premium workflow sharing the same
/// starved queues keeps completing while the best-effort one absorbs the
/// sheds.
#[test]
fn deadline_aware_shedding_drops_low_priority_first() {
    fn tiered(name: &str, class: u8) -> Workflow {
        Workflow::steps(
            name,
            Step::sequence(vec![
                Step::task(
                    "split",
                    FunctionProfile::with_millis(40, 2 << 20).priority(class),
                ),
                Step::foreach(
                    "work",
                    FunctionProfile::with_millis(120, 1 << 20).priority(class),
                    6,
                ),
                Step::task("merge", FunctionProfile::with_millis(30, 0).priority(class)),
            ]),
        )
    }
    let config = ClusterConfig {
        mode: ScheduleMode::WorkerSp,
        faastore: true,
        workers: 2,
        node_caps: NodeCaps {
            cores: 2,
            ..NodeCaps::default()
        },
        qos_target: Some(SimDuration::from_secs(5)),
        overload: OverloadConfig {
            admission: Some(AdmissionConfig {
                queue_capacity: 4,
                policy: ShedPolicy::DeadlineAware,
            }),
            ..OverloadConfig::default()
        },
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(config).expect("valid config");
    cluster
        .register(
            &tiered("BestEffort", 0),
            ClientConfig::ClosedLoop { invocations: 6 },
        )
        .expect("registers");
    cluster
        .register(
            &tiered("Premium", 2),
            ClientConfig::ClosedLoop { invocations: 6 },
        )
        .expect("registers");
    cluster.run_until_idle();
    let report = cluster.report();

    assert_conserved(&report);
    let o = &report.overload;
    assert!(o.shed > 0, "queue never overflowed: {o:?}");
    assert_eq!(o.shed_deadline, o.shed);
    let low = report.workflow("BestEffort").shed;
    let high = report.workflow("Premium").shed;
    assert!(
        low > high,
        "class 0 must absorb the sheds: best-effort shed {low}, premium shed {high}"
    );
}

/// A saturated pool pushes back differently per mode: WorkerSP defers the
/// dispatch locally, MasterSP bounces it through the central engine. Both
/// must keep liveness (`max_defers` caps the wait) and conservation.
#[test]
fn backpressure_defers_locally_and_requeues_centrally() {
    for (mode, faastore) in [
        (ScheduleMode::WorkerSp, true),
        (ScheduleMode::MasterSp, false),
    ] {
        let config = ClusterConfig {
            mode,
            faastore,
            workers: 2,
            node_caps: NodeCaps {
                cores: 2,
                ..NodeCaps::default()
            },
            overload: OverloadConfig {
                backpressure: Some(BackpressureConfig {
                    queue_threshold: 1,
                    defer_delay: SimDuration::from_millis(10),
                    max_defers: 5,
                }),
                ..OverloadConfig::default()
            },
            ..ClusterConfig::default()
        };
        // Two co-located workflows keep invocations overlapping, so a node
        // dispatch can observe the other invocation's queue depth (a single
        // closed loop always dispatches into an empty queue).
        let mut cluster = Cluster::new(config).expect("valid config");
        for name in ["SatA", "SatB"] {
            let wf = Workflow::steps(
                name,
                Step::sequence(vec![
                    Step::task("split", FunctionProfile::with_millis(40, 2 << 20)),
                    Step::foreach("work", FunctionProfile::with_millis(120, 1 << 20), 10),
                    Step::task("merge", FunctionProfile::with_millis(30, 0)),
                ]),
            );
            cluster
                .register(&wf, ClientConfig::ClosedLoop { invocations: 8 })
                .expect("registers");
        }
        cluster.run_until_idle();
        let report = cluster.report();

        assert_conserved(&report);
        let o = &report.overload;
        match mode {
            ScheduleMode::WorkerSp => {
                assert!(
                    o.backpressure_deferrals > 0,
                    "WorkerSP never deferred: {o:?}"
                );
                assert_eq!(o.master_requeues, 0, "WorkerSP must not requeue: {o:?}");
            }
            ScheduleMode::MasterSp => {
                assert!(o.master_requeues > 0, "MasterSP never requeued: {o:?}");
            }
        }
        assert_eq!(report.workflow("SatA").completed, 8);
        assert_eq!(report.workflow("SatB").completed, 8);
    }
}

/// With every mechanism disabled (the default), the overload report stays
/// all-zero except the arrival count — the subsystem must be invisible.
#[test]
fn disabled_overload_config_reports_only_admissions() {
    let report = run(ClusterConfig::default(), &saturating_workflow(4), 5);
    let o = report.overload;
    assert_eq!(o.admitted, 5);
    assert_eq!(
        faasflow_core::OverloadReport {
            admitted: 5,
            ..faasflow_core::OverloadReport::default()
        },
        o
    );
    assert_conserved(&report);
}
