//! Golden-report determinism regression: fixed configurations and
//! workloads must keep producing *bit-identical* `RunReport`s across
//! refactors of the hot paths (event queue, flow rates, scheduling
//! loops). The committed JSON under `tests/golden/` was generated from
//! the pre-optimisation kernel; any divergence means the `(time, seq)`
//! ordering contract or the max-min allocation changed behaviour, not
//! just speed.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p faasflow-core --test determinism_golden
//! ```

use faasflow_core::{
    ClientConfig, Cluster, ClusterConfig, FaultPlan, NetFault, NodeCrash, RunReport, ScheduleMode,
    StorageFault, StorageFaultKind,
};
use faasflow_sim::SimDuration;
use faasflow_wdl::{FunctionProfile, Step, Workflow};

/// Map/reduce stand-in: fan-out wide enough to cross partitions so both
/// local (FaaStore) and remote-store paths carry data.
fn word_count() -> Workflow {
    Workflow::steps(
        "WordCount",
        Step::sequence(vec![
            Step::task("split", FunctionProfile::with_millis(100, 8 << 20)),
            Step::foreach("count", FunctionProfile::with_millis(150, 4 << 20), 8),
            Step::foreach("shuffle", FunctionProfile::with_millis(120, 2 << 20), 8),
            Step::task("merge", FunctionProfile::with_millis(80, 0)),
        ]),
    )
}

/// Long sequential chain with heavy payloads (Genome-style pipeline).
fn genome() -> Workflow {
    Workflow::steps(
        "Genome",
        Step::sequence(vec![
            Step::task("individuals", FunctionProfile::with_millis(200, 24 << 20)),
            Step::foreach("sifting", FunctionProfile::with_millis(260, 12 << 20), 4),
            Step::task("mutual", FunctionProfile::with_millis(150, 6 << 20)),
            Step::task("visualize", FunctionProfile::with_millis(90, 0)),
        ]),
    )
}

/// Scenario 1: WorkerSP + FaaStore, two co-located closed-loop workflows.
fn worker_sp_report() -> RunReport {
    let config = ClusterConfig {
        mode: ScheduleMode::WorkerSp,
        faastore: true,
        workers: 4,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(config).expect("valid config");
    cluster
        .register(&word_count(), ClientConfig::ClosedLoop { invocations: 12 })
        .expect("registers");
    cluster
        .register(&genome(), ClientConfig::ClosedLoop { invocations: 8 })
        .expect("registers");
    cluster.run_until_idle();
    cluster.report()
}

/// Scenario 2: MasterSP under a chaos plan — a crash+restart, a storage
/// blackout and link degradation all overlap the run, exercising the
/// recovery sweeps (doomed/orphans/impacted paths) end to end.
fn master_sp_faults_report() -> RunReport {
    let fault = FaultPlan {
        node_crashes: vec![NodeCrash {
            worker: 1,
            at: SimDuration::from_secs(2),
            restart_after: Some(SimDuration::from_secs(3)),
        }],
        storage_faults: vec![StorageFault {
            at: SimDuration::from_secs(6),
            duration: SimDuration::from_secs(2),
            kind: StorageFaultKind::Blackout,
        }],
        net_faults: vec![NetFault {
            worker: 2,
            at: SimDuration::from_secs(1),
            duration: SimDuration::from_secs(5),
            loss: 0.3,
            latency_factor: 2.0,
            bandwidth_factor: 0.5,
        }],
        ..FaultPlan::default()
    };
    let config = ClusterConfig {
        mode: ScheduleMode::MasterSp,
        faastore: false,
        workers: 4,
        fault,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(config).expect("valid config");
    cluster
        .register(&word_count(), ClientConfig::ClosedLoop { invocations: 24 })
        .expect("registers");
    cluster.run_until_idle();
    cluster.report()
}

/// Scenario 3: WorkerSP open-loop after warm-up — exercises the timer
/// churn (arrival scheduling, flow completion timers) that the
/// incremental rate recompute coalesces.
fn open_loop_report() -> RunReport {
    let config = ClusterConfig {
        mode: ScheduleMode::WorkerSp,
        faastore: true,
        workers: 8,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(config).expect("valid config");
    let id = cluster
        .register(&word_count(), ClientConfig::ClosedLoop { invocations: 4 })
        .expect("registers");
    cluster.run_until_idle();
    cluster.reset_metrics();
    cluster.switch_to_open_loop(id, 90.0, 20);
    cluster.run_until_idle();
    cluster.report()
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

fn check(name: &str, report: &RunReport) {
    let rendered = serde_json::to_string_pretty(report).expect("report serializes");
    let path = golden_path(name);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("has parent")).expect("mkdir golden");
        std::fs::write(&path, rendered + "\n").expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); run with GOLDEN_REGEN=1", name));
    assert_eq!(
        rendered + "\n",
        golden,
        "{name}: RunReport diverged from the committed golden — the refactor \
         changed simulation behaviour, not just speed"
    );
}

#[test]
fn golden_worker_sp_colocated() {
    check("worker_sp_colocated", &worker_sp_report());
}

#[test]
fn golden_master_sp_faults() {
    check("master_sp_faults", &master_sp_faults_report());
}

#[test]
fn golden_open_loop() {
    check("open_loop", &open_loop_report());
}

/// Same seed twice in-process must also be bit-identical (guards against
/// accidental HashMap-iteration-order dependence independent of goldens).
#[test]
fn same_seed_repeat_is_bit_identical() {
    let a = serde_json::to_string(&worker_sp_report()).expect("serializes");
    let b = serde_json::to_string(&worker_sp_report()).expect("serializes");
    assert_eq!(a, b);
}
