//! # faasflow-engine
//!
//! The two workflow schedule patterns of the paper, as sans-IO state
//! machines:
//!
//! * [`WorkerEngine`] — the **worker-side schedule pattern (WorkerSP)**,
//!   FaaSFlow's contribution (§3.1, §4.2). One engine runs on every worker
//!   node, holds the `Workflow{State, FunctionInfo}` structures for its
//!   sub-graph, triggers local functions when
//!   `PredecessorsDone == PredecessorsCount`, and exchanges *only
//!   execution states* with other workers (TCP cross-node, in-process RPC
//!   locally). No task assignment ever crosses the network.
//!
//! * [`MasterEngine`] — the **master-side schedule pattern (MasterSP)**,
//!   the HyperFlow-serverless baseline (§2.2–2.3). A central engine keeps
//!   all state, assigns every triggered task to a worker, and receives
//!   every execution state back. Each function invocation therefore pays
//!   stages 1 and 3 of §2.3 on the network and queues on the master's CPU.
//!
//! Both engines emit [`worker::WorkerAction`]s / [`master::MasterAction`]s
//! instead of doing IO; the cluster simulation in `faasflow-core` turns
//! actions into timed events. This keeps the protocol logic synchronous,
//! deterministic, and unit-testable without a simulator.

pub mod master;
pub mod trigger;
pub mod worker;

pub use master::{MasterAction, MasterEngine};
pub use trigger::TriggerTracker;
pub use worker::{EngineLoad, WorkerAction, WorkerEngine};
