//! The per-worker workflow engine — WorkerSP (§3.1, §4.2).
//!
//! Each worker node runs one [`WorkerEngine`]. It maintains the
//! `Workflow{State, FunctionInfo}` structures for the sub-graphs assigned
//! to it, triggers *local* functions, and when a completed function has
//! cross-worker successors it "passes the executed state to the remote
//! worker engine through TCP connections" — one state-sync message per
//! remote worker, never a task assignment.
//!
//! The engine is a pure state machine: it consumes completion/sync events
//! and emits [`WorkerAction`]s for the cluster simulation to time.

use std::collections::HashMap;
use std::sync::Arc;

use faasflow_scheduler::Assignment;
use faasflow_sim::stats::Counter;
use faasflow_sim::{FunctionId, InvocationId, NodeId, WorkflowId};
use faasflow_wdl::WorkflowDag;

use crate::trigger::TriggerTracker;

/// What the worker engine asks the runtime to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerAction {
    /// Run a local function node (spawn its `parallelism` instances). For
    /// virtual nodes the runtime completes them immediately.
    TriggerFunction {
        /// The workflow.
        workflow: WorkflowId,
        /// The invocation.
        invocation: InvocationId,
        /// The node to run (guaranteed local to this worker).
        function: FunctionId,
    },
    /// Send an execution-state update to a remote worker engine over TCP.
    SyncState {
        /// Destination worker.
        to: NodeId,
        /// The workflow.
        workflow: WorkflowId,
        /// The invocation.
        invocation: InvocationId,
        /// The function whose completion is being propagated.
        completed: FunctionId,
    },
    /// A DAG exit node completed on this worker — report towards the
    /// client (the invocation is complete when every exit node reported).
    ExitComplete {
        /// The workflow.
        workflow: WorkflowId,
        /// The invocation.
        invocation: InvocationId,
        /// The completed exit node.
        function: FunctionId,
    },
}

/// Counters for §5.2's message accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerEngineStats {
    /// Cross-worker state-sync messages sent.
    pub syncs_sent: Counter,
    /// State updates applied via local (in-process) RPC.
    pub local_updates: Counter,
    /// Local function triggers performed.
    pub triggers: Counter,
}

/// The engine's own view of its load, reported up to the cluster's
/// placement layer and the observability exporters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineLoad {
    /// Live per-invocation trigger trackers held by the engine.
    pub live_invocations: usize,
    /// Workflows with a sub-graph context installed.
    pub installed_workflows: usize,
    /// Function groups of those contexts placed on this node (0 for the
    /// central engine, which routes rather than hosts).
    pub local_groups: usize,
}

#[derive(Debug, Clone)]
struct WorkflowCtx {
    dag: Arc<WorkflowDag>,
    assignment: Arc<Assignment>,
    seed: u64,
}

/// One in-flight invocation: its trigger tracker plus the workflow context
/// pinned when the invocation first touched this engine. Routing a live
/// invocation through a *newer* installed assignment would strand it —
/// the data-placement decisions and the other engines' sync targets all
/// follow the pinned version (red-black deployment).
#[derive(Debug)]
struct LiveInvocation {
    tracker: TriggerTracker,
    ctx: WorkflowCtx,
}

impl LiveInvocation {
    fn new(invocation: InvocationId, ctx: WorkflowCtx) -> Self {
        LiveInvocation {
            tracker: TriggerTracker::new(ctx.dag.clone(), invocation, ctx.seed),
            ctx,
        }
    }
}

/// The decentralized engine of one worker node.
#[derive(Debug)]
pub struct WorkerEngine {
    node: NodeId,
    workflows: HashMap<WorkflowId, WorkflowCtx>,
    invocations: HashMap<(WorkflowId, InvocationId), LiveInvocation>,
    stats: WorkerEngineStats,
}

impl WorkerEngine {
    /// Creates the engine for `node`.
    pub fn new(node: NodeId) -> Self {
        WorkerEngine {
            node,
            workflows: HashMap::new(),
            invocations: HashMap::new(),
            stats: WorkerEngineStats::default(),
        }
    }

    /// The hosting worker node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Message counters.
    pub fn stats(&self) -> &WorkerEngineStats {
        &self.stats
    }

    /// Live per-invocation state structures (for §5.7's memory accounting).
    pub fn live_invocations(&self) -> usize {
        self.invocations.len()
    }

    /// The engine's load report: live invocation structures, installed
    /// workflow contexts, and how many of their groups are placed here.
    pub fn load(&self) -> EngineLoad {
        EngineLoad {
            live_invocations: self.invocations.len(),
            installed_workflows: self.workflows.len(),
            local_groups: self
                .workflows
                .values()
                .map(|ctx| {
                    ctx.assignment
                        .groups
                        .iter()
                        .filter(|g| g.worker == self.node)
                        .count()
                })
                .sum(),
        }
    }

    /// Installs (or replaces) the sub-graph context of a workflow — called
    /// at every partition iteration when the Graph Scheduler pushes new
    /// versions. In-flight invocations keep their pinned context (red-black:
    /// only invocations beginning after this call see the new assignment).
    pub fn install(
        &mut self,
        workflow: WorkflowId,
        dag: Arc<WorkflowDag>,
        assignment: Arc<Assignment>,
        seed: u64,
    ) {
        self.workflows.insert(
            workflow,
            WorkflowCtx {
                dag,
                assignment,
                seed,
            },
        );
    }

    /// Removes a workflow's context entirely.
    pub fn uninstall(&mut self, workflow: WorkflowId) {
        self.workflows.remove(&workflow);
    }

    /// Pins an invocation to an explicit deployment snapshot before the
    /// first `begin`/`sync` event reaches this engine. The runtime calls
    /// this with the invocation's cluster-side pinned version, so every
    /// engine routes it identically even when a rebalance installed a
    /// newer assignment in between. A no-op if the invocation already has
    /// a pinned context here.
    pub fn ensure_invocation(
        &mut self,
        workflow: WorkflowId,
        invocation: InvocationId,
        dag: Arc<WorkflowDag>,
        assignment: Arc<Assignment>,
        seed: u64,
    ) {
        self.invocations
            .entry((workflow, invocation))
            .or_insert_with(|| {
                LiveInvocation::new(
                    invocation,
                    WorkflowCtx {
                        dag,
                        assignment,
                        seed,
                    },
                )
            });
    }

    /// Starts an invocation on this worker: triggers every *local* entry
    /// node of the workflow DAG.
    ///
    /// # Panics
    ///
    /// Panics if the workflow was never installed.
    pub fn begin_invocation(
        &mut self,
        workflow: WorkflowId,
        invocation: InvocationId,
    ) -> Vec<WorkerAction> {
        let installed = self
            .workflows
            .get(&workflow)
            .expect("begin_invocation on uninstalled workflow")
            .clone();
        let live = self
            .invocations
            .entry((workflow, invocation))
            .or_insert_with(|| LiveInvocation::new(invocation, installed));
        let ctx = live.ctx.clone();
        let mut actions = Vec::new();
        for entry in ctx.dag.entry_nodes() {
            if ctx.assignment.worker_of(entry) == self.node && live.tracker.force_trigger(entry) {
                self.stats.triggers.inc();
                actions.push(WorkerAction::TriggerFunction {
                    workflow,
                    invocation,
                    function: entry,
                });
            }
        }
        actions
    }

    /// Handles completion of a single executor instance of a local node.
    /// When the last instance finishes, the node completes and its state
    /// propagates (locally and/or via sync messages).
    ///
    /// An unknown invocation is ignored (returns no actions): after a
    /// crash-and-restart this engine comes back blank, and a completion
    /// message for a pre-crash invocation may still be in flight — the
    /// cluster's recovery layer owns that invocation now.
    pub fn on_instance_complete(
        &mut self,
        workflow: WorkflowId,
        invocation: InvocationId,
        function: FunctionId,
    ) -> Vec<WorkerAction> {
        let Some(live) = self.invocations.get_mut(&(workflow, invocation)) else {
            return Vec::new();
        };
        if live.tracker.instance_done(function) {
            self.propagate_completion(workflow, invocation, function)
        } else {
            Vec::new()
        }
    }

    /// Handles a state-sync message from a remote engine: `completed` (a
    /// function hosted elsewhere) finished; update local successors.
    ///
    /// A duplicate sync about a node whose completion this engine already
    /// processed is ignored — crash recovery re-sends syncs whose durable
    /// record was lost, and counting a predecessor twice would trigger
    /// successors prematurely.
    ///
    /// # Panics
    ///
    /// Panics if the workflow was never installed.
    pub fn on_state_sync(
        &mut self,
        workflow: WorkflowId,
        invocation: InvocationId,
        completed: FunctionId,
    ) -> Vec<WorkerAction> {
        let installed = self
            .workflows
            .get(&workflow)
            .expect("state sync for uninstalled workflow")
            .clone();
        let live = self
            .invocations
            .entry((workflow, invocation))
            .or_insert_with(|| LiveInvocation::new(invocation, installed));
        let ctx = live.ctx.clone();
        if !live.tracker.mark_propagated(completed) {
            return Vec::new();
        }
        let mut actions = Vec::new();
        let successors = live.tracker.successors_to_notify(completed);
        for s in successors {
            if ctx.assignment.worker_of(s) != self.node {
                continue; // another worker owns this successor
            }
            let live = self
                .invocations
                .get_mut(&(workflow, invocation))
                .expect("tracker created above");
            if live.tracker.predecessor_done(s) {
                self.stats.triggers.inc();
                actions.push(WorkerAction::TriggerFunction {
                    workflow,
                    invocation,
                    function: s,
                });
            }
        }
        actions
    }

    /// Releases the invocation's `State` structure (§4.2.1: "the per-worker
    /// engine should release the *State* object at the end of each
    /// invocation").
    pub fn release_invocation(&mut self, workflow: WorkflowId, invocation: InvocationId) {
        self.invocations.remove(&(workflow, invocation));
    }

    /// Whether this engine has recorded `function` as fully completed for
    /// the invocation (all instances done). Used by the journal layer to
    /// decide when a `NodeDone` record should be appended.
    pub fn node_done(
        &self,
        workflow: WorkflowId,
        invocation: InvocationId,
        function: FunctionId,
    ) -> bool {
        self.invocations
            .get(&(workflow, invocation))
            .is_some_and(|li| li.tracker.is_done(function))
    }

    /// Crash recovery: rebuilds this invocation's tracker from durable
    /// history and returns the actions needed to resume it.
    ///
    /// * `completed` — nodes known (cluster-wide) to have fully completed.
    /// * `already_propagated` — the subset whose downstream effects this
    ///   engine durably recorded (journaled `NodeDone`); their syncs and
    ///   exit reports are *not* re-emitted. Unrecorded completions re-emit
    ///   and rely on receiver-side dedup.
    /// * `inflight` — `(node, completions)` seeds for nodes still running,
    ///   covering completions reported while the engine was down.
    ///
    /// Emitted `TriggerFunction` actions may duplicate pre-crash
    /// dispatches; the runtime's dispatch dedup drops those.
    ///
    /// # Panics
    ///
    /// Panics if the workflow was never installed.
    pub fn replay_invocation(
        &mut self,
        workflow: WorkflowId,
        invocation: InvocationId,
        completed: &[FunctionId],
        already_propagated: &[FunctionId],
        inflight: &[(FunctionId, u32)],
    ) -> Vec<WorkerAction> {
        // Replay deliberately re-pins to the *installed* context: the
        // recovery layer redeployed before replaying, and the restarted
        // invocation follows the fresh version.
        let ctx = self
            .workflows
            .get(&workflow)
            .expect("replay on uninstalled workflow")
            .clone();
        let mut tracker = TriggerTracker::new(ctx.dag.clone(), invocation, ctx.seed);
        // Mark every known completion up front so the cascade below can
        // neither re-trigger nor re-complete them.
        for &f in completed {
            tracker.force_done(f);
        }
        let mut actions = Vec::new();
        // Local entry nodes that never completed need (re)triggering.
        for entry in ctx.dag.entry_nodes() {
            if ctx.assignment.worker_of(entry) == self.node && tracker.force_trigger(entry) {
                self.stats.triggers.inc();
                actions.push(WorkerAction::TriggerFunction {
                    workflow,
                    invocation,
                    function: entry,
                });
            }
        }
        // Re-run each completed node's downstream effects through the
        // fresh tracker: local predecessor counts always (they are this
        // tracker's private state), external effects (syncs, exit reports)
        // only when no durable record says they already went out.
        for &f in completed {
            tracker.mark_propagated(f);
            let home = ctx.assignment.worker_of(f) == self.node;
            let suppress_external = !home || already_propagated.contains(&f);
            if !suppress_external && ctx.dag.successors(f).is_empty() {
                actions.push(WorkerAction::ExitComplete {
                    workflow,
                    invocation,
                    function: f,
                });
            }
            let mut remote_workers: Vec<NodeId> = Vec::new();
            for s in tracker.successors_to_notify(f) {
                let w = ctx.assignment.worker_of(s);
                if w == self.node {
                    self.stats.local_updates.inc();
                    if tracker.predecessor_done(s) {
                        self.stats.triggers.inc();
                        actions.push(WorkerAction::TriggerFunction {
                            workflow,
                            invocation,
                            function: s,
                        });
                    }
                } else if !suppress_external && !remote_workers.contains(&w) {
                    remote_workers.push(w);
                }
            }
            for w in remote_workers {
                self.stats.syncs_sent.inc();
                actions.push(WorkerAction::SyncState {
                    to: w,
                    workflow,
                    invocation,
                    completed: f,
                });
            }
        }
        // Seed in-flight instance counts: completions that were reported
        // while the engine was down will never be re-sent.
        for &(f, done) in inflight {
            tracker.set_instances_done(f, done);
        }
        self.invocations
            .insert((workflow, invocation), LiveInvocation { tracker, ctx });
        actions
    }

    /// Node completion: notify local successors inline (in-process RPC) and
    /// remote workers by one sync message each.
    fn propagate_completion(
        &mut self,
        workflow: WorkflowId,
        invocation: InvocationId,
        function: FunctionId,
    ) -> Vec<WorkerAction> {
        let live = self
            .invocations
            .get_mut(&(workflow, invocation))
            .expect("completion for unknown invocation");
        let ctx = live.ctx.clone();
        let mut actions = Vec::new();
        if ctx.dag.successors(function).is_empty() {
            actions.push(WorkerAction::ExitComplete {
                workflow,
                invocation,
                function,
            });
        }
        let successors = live.tracker.successors_to_notify(function);
        let mut remote_workers: Vec<NodeId> = Vec::new();
        let mut local: Vec<FunctionId> = Vec::new();
        for s in successors {
            let w = ctx.assignment.worker_of(s);
            if w == self.node {
                local.push(s);
            } else if !remote_workers.contains(&w) {
                remote_workers.push(w);
            }
        }
        // Local successors: inner-RPC state updates, possibly triggering.
        let mut to_run = Vec::new();
        for s in local {
            self.stats.local_updates.inc();
            let live = self
                .invocations
                .get_mut(&(workflow, invocation))
                .expect("tracker alive during propagation");
            if live.tracker.predecessor_done(s) {
                to_run.push(s);
            }
        }
        // Virtual nodes among the triggered set are the runtime's concern
        // (it completes them instantly); the engine only reports triggers.
        for s in to_run {
            self.stats.triggers.inc();
            actions.push(WorkerAction::TriggerFunction {
                workflow,
                invocation,
                function: s,
            });
        }
        // One TCP state sync per remote worker hosting successors.
        for w in remote_workers {
            self.stats.syncs_sent.inc();
            actions.push(WorkerAction::SyncState {
                to: w,
                workflow,
                invocation,
                completed: function,
            });
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasflow_scheduler::{ContentionSet, GraphScheduler, RuntimeMetrics, WorkerInfo};
    use faasflow_sim::SimRng;
    use faasflow_wdl::{DagParser, FunctionProfile, Step, Workflow};

    /// Builds a 3-function chain partitioned across two workers:
    /// a, b on worker 1 and c on worker 2 (forced by zero quota + capacity).
    fn setup() -> (
        Arc<WorkflowDag>,
        Arc<Assignment>,
        WorkerEngine,
        WorkerEngine,
    ) {
        let wf = Workflow::steps(
            "chain",
            Step::sequence(vec![
                Step::task("a", FunctionProfile::with_millis(1, 10 << 20)),
                Step::task("b", FunctionProfile::with_millis(1, 10 << 20)),
                Step::task("c", FunctionProfile::with_millis(1, 0)),
            ]),
        );
        let dag = Arc::new(DagParser::default().parse(&wf).unwrap());
        // Hand-built placement: {a, b} on worker 1, {c} on worker 2, so the
        // b -> c edge is the one cross-worker hop.
        let (w_ab, w_c) = (NodeId::new(1), NodeId::new(2));
        use faasflow_scheduler::Group;
        use faasflow_sim::GroupId;
        let assignment = Arc::new(Assignment {
            groups: vec![
                Group {
                    id: GroupId::new(0),
                    members: vec![FunctionId::new(0), FunctionId::new(1)],
                    worker: w_ab,
                    capacity_needed: 2,
                },
                Group {
                    id: GroupId::new(1),
                    members: vec![FunctionId::new(2)],
                    worker: w_c,
                    capacity_needed: 1,
                },
            ],
            node_of: vec![w_ab, w_ab, w_c],
            group_of: vec![GroupId::new(0), GroupId::new(0), GroupId::new(1)],
            storage_local: vec![true, false, false],
            mem_consume: 10 << 20,
            quota: 10 << 20,
        });
        let mut e1 = WorkerEngine::new(w_ab);
        let mut e2 = WorkerEngine::new(w_c);
        let wid = WorkflowId::new(0);
        e1.install(wid, dag.clone(), assignment.clone(), 7);
        e2.install(wid, dag.clone(), assignment.clone(), 7);
        (dag, assignment, e1, e2)
    }

    const WF: WorkflowId = WorkflowId::new(0);
    const INV: InvocationId = InvocationId::new(0);

    #[test]
    fn begin_triggers_only_local_entries() {
        let (_dag, _asg, mut e1, mut e2) = setup();
        let a1 = e1.begin_invocation(WF, INV);
        assert_eq!(
            a1,
            vec![WorkerAction::TriggerFunction {
                workflow: WF,
                invocation: INV,
                function: FunctionId::new(0)
            }]
        );
        let a2 = e2.begin_invocation(WF, INV);
        assert!(a2.is_empty(), "entry node is not on worker 2");
    }

    #[test]
    fn local_successor_triggers_without_network() {
        let (_dag, _asg, mut e1, _e2) = setup();
        e1.begin_invocation(WF, INV);
        let actions = e1.on_instance_complete(WF, INV, FunctionId::new(0));
        assert_eq!(
            actions,
            vec![WorkerAction::TriggerFunction {
                workflow: WF,
                invocation: INV,
                function: FunctionId::new(1)
            }]
        );
        assert_eq!(e1.stats().local_updates.get(), 1);
        assert_eq!(e1.stats().syncs_sent.get(), 0);
    }

    #[test]
    fn cross_worker_successor_produces_one_sync() {
        let (_dag, asg, mut e1, mut e2) = setup();
        e1.begin_invocation(WF, INV);
        e1.on_instance_complete(WF, INV, FunctionId::new(0));
        let actions = e1.on_instance_complete(WF, INV, FunctionId::new(1));
        let w_c = asg.worker_of(FunctionId::new(2));
        assert_eq!(
            actions,
            vec![WorkerAction::SyncState {
                to: w_c,
                workflow: WF,
                invocation: INV,
                completed: FunctionId::new(1)
            }]
        );
        assert_eq!(e1.stats().syncs_sent.get(), 1);
        // Worker 2 receives the sync and triggers c.
        let actions = e2.on_state_sync(WF, INV, FunctionId::new(1));
        assert_eq!(
            actions,
            vec![WorkerAction::TriggerFunction {
                workflow: WF,
                invocation: INV,
                function: FunctionId::new(2)
            }]
        );
    }

    #[test]
    fn exit_completion_is_reported() {
        let (_dag, _asg, mut e1, mut e2) = setup();
        e1.begin_invocation(WF, INV);
        e1.on_instance_complete(WF, INV, FunctionId::new(0));
        e1.on_instance_complete(WF, INV, FunctionId::new(1));
        e2.on_state_sync(WF, INV, FunctionId::new(1));
        let actions = e2.on_instance_complete(WF, INV, FunctionId::new(2));
        assert_eq!(
            actions,
            vec![WorkerAction::ExitComplete {
                workflow: WF,
                invocation: INV,
                function: FunctionId::new(2)
            }]
        );
    }

    #[test]
    fn release_frees_state() {
        let (_dag, _asg, mut e1, _e2) = setup();
        e1.begin_invocation(WF, INV);
        assert_eq!(e1.live_invocations(), 1);
        e1.release_invocation(WF, INV);
        assert_eq!(e1.live_invocations(), 0);
    }

    #[test]
    fn foreach_node_completes_after_all_instances() {
        let wf = Workflow::steps(
            "fe",
            Step::foreach("work", FunctionProfile::with_millis(1, 0), 3),
        );
        let dag = Arc::new(DagParser::default().parse(&wf).unwrap());
        let metrics = RuntimeMetrics::initial(&dag);
        let workers = vec![WorkerInfo::new(NodeId::new(1), 64)];
        let mut rng = SimRng::seed_from(1);
        let asg = Arc::new(
            GraphScheduler::default()
                .partition(
                    &dag,
                    &workers,
                    &metrics,
                    &ContentionSet::default(),
                    u64::MAX,
                    &mut rng,
                )
                .unwrap(),
        );
        let mut eng = WorkerEngine::new(NodeId::new(1));
        eng.install(WF, dag.clone(), asg, 7);
        let first = eng.begin_invocation(WF, INV);
        // Entry is the virtual start; runtime completes it instantly:
        let vs = match &first[0] {
            WorkerAction::TriggerFunction { function, .. } => *function,
            other => panic!("unexpected action {other:?}"),
        };
        // The runtime would call instance-complete for the virtual node.
        let actions = eng.on_instance_complete(WF, INV, vs);
        let work = match &actions[0] {
            WorkerAction::TriggerFunction { function, .. } => *function,
            other => panic!("unexpected action {other:?}"),
        };
        assert_eq!(dag.node(work).parallelism, 3);
        assert!(eng.on_instance_complete(WF, INV, work).is_empty());
        assert!(eng.on_instance_complete(WF, INV, work).is_empty());
        let done = eng.on_instance_complete(WF, INV, work);
        assert!(!done.is_empty(), "third instance completes the node");
    }
}
