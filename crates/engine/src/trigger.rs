//! Shared trigger-state tracking — the paper's `State` structure (§3.1).
//!
//! "*State* preserves the execution state of functions and their
//! predecessors for invocation synchronization and local triggering. [...]
//! If the *PredecessorsDone* count of a function reaches its target
//! *PredecessorsCount*, the local engine will trigger and invoke it."
//!
//! Both engines use one [`TriggerTracker`] per invocation. Switch arms are
//! chosen by a deterministic hash of `(seed, invocation, switch node)`, so
//! every engine in the cluster independently picks the same arm without
//! coordination.

use std::collections::HashMap;
use std::sync::Arc;

use faasflow_sim::{FunctionId, InvocationId};
use faasflow_wdl::{NodeKind, WorkflowDag};

#[derive(Debug, Clone, Copy, Default)]
struct NodeState {
    predecessors_done: u32,
    triggered: bool,
    done: bool,
    instances_done: u32,
    /// This engine already processed the node's completion (propagated it
    /// to successors / sent syncs). Receiver-side dedup: a duplicate sync
    /// about an already-propagated node must not count a predecessor twice.
    propagated: bool,
}

/// Per-invocation trigger state over one workflow DAG.
#[derive(Debug, Clone)]
pub struct TriggerTracker {
    dag: Arc<WorkflowDag>,
    invocation: InvocationId,
    seed: u64,
    states: HashMap<FunctionId, NodeState>,
}

impl TriggerTracker {
    /// Creates the tracker for one invocation. `seed` feeds the switch-arm
    /// hash and must be identical on every engine of the cluster.
    pub fn new(dag: Arc<WorkflowDag>, invocation: InvocationId, seed: u64) -> Self {
        TriggerTracker {
            dag,
            invocation,
            seed,
            states: HashMap::new(),
        }
    }

    /// The DAG this tracker runs over.
    pub fn dag(&self) -> &Arc<WorkflowDag> {
        &self.dag
    }

    /// The deterministically chosen arm of a switch virtual-start node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a switch start.
    pub fn chosen_arm(&self, node: FunctionId) -> u32 {
        let arms = match self.dag.node(node).kind {
            NodeKind::VirtualStart {
                switch_arms: Some(arms),
            } => arms,
            _ => panic!("chosen_arm on a non-switch node {node}"),
        };
        // SplitMix64 finalizer over (seed, invocation, node).
        let mut z = self
            .seed
            .wrapping_add(u64::from(self.invocation.index() as u32) << 32)
            .wrapping_add(node.index() as u64)
            .wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z % u64::from(arms)) as u32
    }

    /// Marks a node as triggered without predecessor accounting (entry
    /// nodes). Returns `false` when it was already triggered.
    pub fn force_trigger(&mut self, node: FunctionId) -> bool {
        let st = self.states.entry(node).or_default();
        if st.triggered {
            false
        } else {
            st.triggered = true;
            true
        }
    }

    /// Records that one predecessor of `node` completed. Returns `true`
    /// when this update triggers `node` (reaches `PredecessorsCount`, or
    /// the first completion for an any-join node).
    pub fn predecessor_done(&mut self, node: FunctionId) -> bool {
        let required = self.dag.required_predecessors(node);
        let st = self.states.entry(node).or_default();
        st.predecessors_done += 1;
        if !st.triggered && st.predecessors_done >= required {
            st.triggered = true;
            true
        } else {
            false
        }
    }

    /// Records completion of one executor instance of `node`. Returns
    /// `true` when the whole node just completed (all `parallelism`
    /// instances done).
    ///
    /// # Panics
    ///
    /// Panics if the node was never triggered, completed twice, or received
    /// more instance completions than its parallelism.
    pub fn instance_done(&mut self, node: FunctionId) -> bool {
        let parallelism = self.dag.node(node).parallelism;
        let st = self.states.entry(node).or_default();
        assert!(st.triggered, "instance completion for untriggered {node}");
        assert!(!st.done, "instance completion after node {node} completed");
        st.instances_done += 1;
        assert!(
            st.instances_done <= parallelism,
            "more instance completions than parallelism for {node}"
        );
        if st.instances_done == parallelism {
            st.done = true;
            true
        } else {
            false
        }
    }

    /// Replay: marks `node` fully completed without the incremental
    /// instance accounting — triggered, done, every instance counted.
    /// Idempotent; used when rebuilding a tracker from durable history.
    pub fn force_done(&mut self, node: FunctionId) {
        let parallelism = self.dag.node(node).parallelism;
        let st = self.states.entry(node).or_default();
        st.triggered = true;
        st.done = true;
        st.instances_done = parallelism;
    }

    /// Replay: seeds the instance-completion count of an in-flight `node`
    /// with completions the engine would otherwise never hear about again
    /// (they were reported while the engine was down). Also marks the node
    /// triggered.
    ///
    /// # Panics
    ///
    /// Panics if `done` exceeds the node's parallelism.
    pub fn set_instances_done(&mut self, node: FunctionId, done: u32) {
        let parallelism = self.dag.node(node).parallelism;
        assert!(
            done <= parallelism,
            "seeding {done} instance completions on {node} with parallelism {parallelism}"
        );
        let st = self.states.entry(node).or_default();
        st.triggered = true;
        st.instances_done = done;
    }

    /// Marks `node`'s completion as processed by this engine (successor
    /// propagation done). Returns `false` when it already was — the
    /// duplicate-sync suppression signal.
    pub fn mark_propagated(&mut self, node: FunctionId) -> bool {
        let st = self.states.entry(node).or_default();
        if st.propagated {
            false
        } else {
            st.propagated = true;
            true
        }
    }

    /// True once every instance of `node` completed.
    pub fn is_done(&self, node: FunctionId) -> bool {
        self.states.get(&node).map(|s| s.done).unwrap_or(false)
    }

    /// True once `node` was triggered.
    pub fn is_triggered(&self, node: FunctionId) -> bool {
        self.states.get(&node).map(|s| s.triggered).unwrap_or(false)
    }

    /// The successors that must learn about `node`'s completion, with
    /// switch-arm edges of non-chosen arms filtered out.
    pub fn successors_to_notify(&self, node: FunctionId) -> Vec<FunctionId> {
        let is_switch = matches!(
            self.dag.node(node).kind,
            NodeKind::VirtualStart {
                switch_arms: Some(_)
            }
        );
        let arm = is_switch.then(|| self.chosen_arm(node));
        self.dag
            .successors(node)
            .iter()
            .filter(|&&(eid, _)| match (arm, self.dag.edge(eid).switch_arm) {
                (Some(chosen), Some(a)) => a == chosen,
                _ => true,
            })
            .map(|&(_, s)| s)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasflow_wdl::{DagParser, FunctionProfile, Step, SwitchCase, Workflow};

    fn parse(step: Step) -> Arc<WorkflowDag> {
        Arc::new(
            DagParser::default()
                .parse(&Workflow::steps("t", step))
                .expect("valid workflow"),
        )
    }

    fn p() -> FunctionProfile {
        FunctionProfile::with_millis(1, 10)
    }

    #[test]
    fn all_join_waits_for_every_predecessor() {
        // a -> {b, c} -> d: d needs both.
        let dag = parse(Step::sequence(vec![
            Step::task("a", p()),
            Step::parallel(vec![Step::task("b", p()), Step::task("c", p())]),
            Step::task("d", p()),
        ]));
        let ve = dag
            .nodes()
            .iter()
            .find(|n| matches!(n.kind, NodeKind::VirtualEnd))
            .unwrap()
            .id;
        let mut tr = TriggerTracker::new(dag, InvocationId::new(0), 1);
        assert!(!tr.predecessor_done(ve), "first branch does not trigger");
        assert!(tr.predecessor_done(ve), "second branch triggers");
        assert!(!tr.predecessor_done(ve), "extra updates never re-trigger");
    }

    #[test]
    fn instance_counting_completes_foreach() {
        let dag = parse(Step::foreach("fe", p(), 3));
        let fe = dag.nodes().iter().find(|n| n.name == "fe").unwrap().id;
        let mut tr = TriggerTracker::new(dag, InvocationId::new(0), 1);
        tr.force_trigger(fe);
        assert!(!tr.instance_done(fe));
        assert!(!tr.instance_done(fe));
        assert!(tr.instance_done(fe), "third instance completes the node");
        assert!(tr.is_done(fe));
    }

    #[test]
    #[should_panic(expected = "untriggered")]
    fn instance_before_trigger_panics() {
        let dag = parse(Step::task("a", p()));
        let a = dag.nodes()[0].id;
        let mut tr = TriggerTracker::new(dag, InvocationId::new(0), 1);
        tr.instance_done(a);
    }

    #[test]
    fn force_done_is_idempotent_and_counts_all_instances() {
        let dag = parse(Step::foreach("fe", p(), 3));
        let fe = dag.nodes().iter().find(|n| n.name == "fe").unwrap().id;
        let mut tr = TriggerTracker::new(dag, InvocationId::new(0), 1);
        tr.force_done(fe);
        tr.force_done(fe);
        assert!(tr.is_done(fe));
        assert!(tr.is_triggered(fe));
    }

    #[test]
    fn seeded_instances_resume_counting() {
        let dag = parse(Step::foreach("fe", p(), 3));
        let fe = dag.nodes().iter().find(|n| n.name == "fe").unwrap().id;
        let mut tr = TriggerTracker::new(dag, InvocationId::new(0), 1);
        tr.set_instances_done(fe, 2);
        assert!(!tr.is_done(fe));
        assert!(
            tr.instance_done(fe),
            "one live completion finishes the node"
        );
    }

    #[test]
    fn propagation_marks_deduplicate() {
        let dag = parse(Step::task("a", p()));
        let a = dag.nodes()[0].id;
        let mut tr = TriggerTracker::new(dag, InvocationId::new(0), 1);
        assert!(tr.mark_propagated(a));
        assert!(
            !tr.mark_propagated(a),
            "second sync about `a` is a duplicate"
        );
    }

    #[test]
    fn switch_arm_is_deterministic_and_filters_successors() {
        let dag = parse(Step::switch(vec![
            SwitchCase::new("0", Step::task("x", p())),
            SwitchCase::new("1", Step::task("y", p())),
        ]));
        let vs = dag
            .nodes()
            .iter()
            .find(|n| {
                matches!(
                    n.kind,
                    NodeKind::VirtualStart {
                        switch_arms: Some(_)
                    }
                )
            })
            .unwrap()
            .id;
        let a = TriggerTracker::new(dag.clone(), InvocationId::new(7), 99);
        let b = TriggerTracker::new(dag.clone(), InvocationId::new(7), 99);
        assert_eq!(a.chosen_arm(vs), b.chosen_arm(vs), "same inputs, same arm");
        let notified = a.successors_to_notify(vs);
        assert_eq!(notified.len(), 1, "only the chosen arm is notified");
        // Different invocations eventually pick different arms.
        let arms: std::collections::HashSet<u32> = (0..64)
            .map(|i| TriggerTracker::new(dag.clone(), InvocationId::new(i), 99).chosen_arm(vs))
            .collect();
        assert_eq!(arms.len(), 2, "both arms exercised across invocations");
    }

    #[test]
    fn force_trigger_is_idempotent() {
        let dag = parse(Step::task("a", p()));
        let a = dag.nodes()[0].id;
        let mut tr = TriggerTracker::new(dag, InvocationId::new(0), 1);
        assert!(tr.force_trigger(a));
        assert!(!tr.force_trigger(a));
        assert!(tr.is_triggered(a));
    }

    #[test]
    fn non_switch_successors_all_notified() {
        let dag = parse(Step::sequence(vec![
            Step::task("a", p()),
            Step::parallel(vec![Step::task("b", p()), Step::task("c", p())]),
        ]));
        let vs = dag
            .nodes()
            .iter()
            .find(|n| matches!(n.kind, NodeKind::VirtualStart { switch_arms: None }))
            .unwrap()
            .id;
        let tr = TriggerTracker::new(dag, InvocationId::new(0), 1);
        assert_eq!(tr.successors_to_notify(vs).len(), 2);
    }
}
