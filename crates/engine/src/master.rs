//! The central workflow engine — MasterSP / HyperFlow-serverless (§2.2).
//!
//! "Master node collects the execution states of functions from the worker
//! nodes and determines whether functions in the workflow meet their
//! trigger conditions. Once predecessors of function f are all completed,
//! task T_f will be triggered and assigned to a worker node for invocation,
//! and returned with the execution state."
//!
//! Every triggered task costs a master→worker assignment message and a
//! worker→master state return (stages 1 and 3 of §2.3); the cluster
//! simulation charges both plus the master's per-message CPU occupancy,
//! which is where MasterSP's scheduling overhead comes from.
//!
//! Placement uses the same [`Assignment`] as FaaSFlow ("we also modify the
//! routing policy in HyperFlow-serverless to the same way as in FaaSFlow,
//! which satisfies the control variate method", §5.1).

use std::collections::HashMap;
use std::sync::Arc;

use faasflow_scheduler::Assignment;
use faasflow_sim::stats::Counter;
use faasflow_sim::{FunctionId, InvocationId, NodeId, WorkflowId};
use faasflow_wdl::WorkflowDag;

use crate::trigger::TriggerTracker;

/// What the master engine asks the runtime to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MasterAction {
    /// Assign a function task to a worker (a TCP message master→worker).
    /// Virtual nodes are not shipped: the master completes them inline.
    AssignTask {
        /// Destination worker.
        worker: NodeId,
        /// The workflow.
        workflow: WorkflowId,
        /// The invocation.
        invocation: InvocationId,
        /// The function to run.
        function: FunctionId,
    },
    /// A DAG exit node completed — report towards the client.
    ExitComplete {
        /// The workflow.
        workflow: WorkflowId,
        /// The invocation.
        invocation: InvocationId,
        /// The completed exit node.
        function: FunctionId,
    },
}

/// Counters for §2.3 / §5.2's message accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct MasterEngineStats {
    /// Task assignments sent to workers.
    pub tasks_assigned: Counter,
    /// Execution states received back.
    pub state_returns: Counter,
}

#[derive(Debug, Clone)]
struct WorkflowCtx {
    dag: Arc<WorkflowDag>,
    assignment: Arc<Assignment>,
    seed: u64,
}

/// The central engine of the MasterSP baseline.
#[derive(Debug)]
pub struct MasterEngine {
    workflows: HashMap<WorkflowId, WorkflowCtx>,
    invocations: HashMap<(WorkflowId, InvocationId), TriggerTracker>,
    stats: MasterEngineStats,
}

impl Default for MasterEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl MasterEngine {
    /// Creates an empty central engine.
    pub fn new() -> Self {
        MasterEngine {
            workflows: HashMap::new(),
            invocations: HashMap::new(),
            stats: MasterEngineStats::default(),
        }
    }

    /// Message counters.
    pub fn stats(&self) -> &MasterEngineStats {
        &self.stats
    }

    /// Live invocation state structures.
    pub fn live_invocations(&self) -> usize {
        self.invocations.len()
    }

    /// The central engine's load report. `local_groups` is always 0: the
    /// master routes task assignments, it hosts no function groups itself.
    pub fn load(&self) -> crate::worker::EngineLoad {
        crate::worker::EngineLoad {
            live_invocations: self.invocations.len(),
            installed_workflows: self.workflows.len(),
            local_groups: 0,
        }
    }

    /// Registers a workflow with its placement (the control-variate routing
    /// of §5.1).
    pub fn install(
        &mut self,
        workflow: WorkflowId,
        dag: Arc<WorkflowDag>,
        assignment: Arc<Assignment>,
        seed: u64,
    ) {
        self.workflows.insert(
            workflow,
            WorkflowCtx {
                dag,
                assignment,
                seed,
            },
        );
    }

    /// Starts an invocation: triggers the DAG's entry nodes.
    ///
    /// # Panics
    ///
    /// Panics if the workflow was never installed.
    pub fn begin_invocation(
        &mut self,
        workflow: WorkflowId,
        invocation: InvocationId,
    ) -> Vec<MasterAction> {
        let ctx = self
            .workflows
            .get(&workflow)
            .expect("begin_invocation on uninstalled workflow")
            .clone();
        let tracker = self
            .invocations
            .entry((workflow, invocation))
            .or_insert_with(|| TriggerTracker::new(ctx.dag.clone(), invocation, ctx.seed));
        let mut triggered = Vec::new();
        for entry in ctx.dag.entry_nodes() {
            if tracker.force_trigger(entry) {
                triggered.push(entry);
            }
        }
        self.dispatch(workflow, invocation, triggered)
    }

    /// Handles an execution-state return from a worker: one executor
    /// instance of `function` completed there.
    ///
    /// An unknown invocation is ignored (returns no actions): after an
    /// engine crash this engine comes back blank, and a state return for a
    /// pre-crash invocation may still be in flight — the recovery layer
    /// owns reconciling it.
    pub fn on_state_return(
        &mut self,
        workflow: WorkflowId,
        invocation: InvocationId,
        function: FunctionId,
    ) -> Vec<MasterAction> {
        self.stats.state_returns.inc();
        let Some(tracker) = self.invocations.get_mut(&(workflow, invocation)) else {
            return Vec::new();
        };
        if !tracker.instance_done(function) {
            return Vec::new();
        }
        self.node_completed(workflow, invocation, function)
    }

    /// Drops the invocation's state.
    pub fn release_invocation(&mut self, workflow: WorkflowId, invocation: InvocationId) {
        self.invocations.remove(&(workflow, invocation));
    }

    /// Whether this engine has recorded `function` as fully completed for
    /// the invocation (all state returns in).
    pub fn node_done(
        &self,
        workflow: WorkflowId,
        invocation: InvocationId,
        function: FunctionId,
    ) -> bool {
        self.invocations
            .get(&(workflow, invocation))
            .is_some_and(|t| t.is_done(function))
    }

    /// Crash recovery: rebuilds this invocation's tracker from durable
    /// history and returns the actions needed to resume it.
    ///
    /// * `completed` — function nodes known to have fully completed
    ///   (virtual nodes are re-derived inline, as in normal operation).
    /// * `already_propagated` — completions whose downstream effects were
    ///   durably journaled; their exit reports are not re-emitted.
    /// * `inflight` — `(node, completions)` seeds for nodes still running,
    ///   covering state returns lost while the engine was down.
    ///
    /// Emitted `AssignTask`/`ExitComplete` actions may duplicate pre-crash
    /// ones; the runtime's dispatch and exit-report dedup drop those.
    ///
    /// # Panics
    ///
    /// Panics if the workflow was never installed.
    pub fn replay_invocation(
        &mut self,
        workflow: WorkflowId,
        invocation: InvocationId,
        completed: &[FunctionId],
        already_propagated: &[FunctionId],
        inflight: &[(FunctionId, u32)],
    ) -> Vec<MasterAction> {
        let ctx = self
            .workflows
            .get(&workflow)
            .expect("replay on uninstalled workflow")
            .clone();
        let mut tracker = TriggerTracker::new(ctx.dag.clone(), invocation, ctx.seed);
        // Mark every known completion up front so the cascades below can
        // neither re-trigger nor re-complete them.
        for &f in completed {
            tracker.force_done(f);
        }
        self.invocations.insert((workflow, invocation), tracker);
        let mut actions = Vec::new();
        // Entry nodes that never completed re-trigger (virtual entries
        // cascade inline through dispatch, as in normal operation).
        let mut entry_triggered = Vec::new();
        {
            let tracker = self
                .invocations
                .get_mut(&(workflow, invocation))
                .expect("tracker inserted above");
            for entry in ctx.dag.entry_nodes() {
                if tracker.force_trigger(entry) {
                    entry_triggered.push(entry);
                }
            }
        }
        actions.extend(self.dispatch(workflow, invocation, entry_triggered));
        // Re-run each completed node's downstream effects through the
        // fresh tracker; virtual successors complete inline and cascade.
        let mut worklist: Vec<FunctionId> = completed.to_vec();
        let mut triggered = Vec::new();
        while let Some(f) = worklist.pop() {
            if !already_propagated.contains(&f) && ctx.dag.successors(f).is_empty() {
                actions.push(MasterAction::ExitComplete {
                    workflow,
                    invocation,
                    function: f,
                });
            }
            let tracker = self
                .invocations
                .get_mut(&(workflow, invocation))
                .expect("tracker alive during replay");
            for s in tracker.successors_to_notify(f) {
                let tracker = self
                    .invocations
                    .get_mut(&(workflow, invocation))
                    .expect("tracker alive");
                if tracker.predecessor_done(s) {
                    if ctx.dag.node(s).kind.is_function() {
                        triggered.push(s);
                    } else if tracker.instance_done(s) {
                        worklist.push(s);
                    }
                }
            }
        }
        actions.extend(self.dispatch(workflow, invocation, triggered));
        // Seed in-flight instance counts: state returns that were lost at
        // the dead engine will never be re-sent.
        let tracker = self
            .invocations
            .get_mut(&(workflow, invocation))
            .expect("tracker alive after replay");
        for &(f, done) in inflight {
            tracker.set_instances_done(f, done);
        }
        actions
    }

    /// Processes a node completion: exit reporting and successor triggering.
    /// Virtual nodes complete inline on the master (they carry no work),
    /// which matches the central engine owning all bookkeeping.
    fn node_completed(
        &mut self,
        workflow: WorkflowId,
        invocation: InvocationId,
        function: FunctionId,
    ) -> Vec<MasterAction> {
        let ctx = self
            .workflows
            .get(&workflow)
            .expect("completion for uninstalled workflow")
            .clone();
        let mut actions = Vec::new();
        // Work list of completed nodes to propagate (virtual chains may
        // cascade without leaving the master).
        let mut completed = vec![function];
        let mut triggered = Vec::new();
        while let Some(f) = completed.pop() {
            if ctx.dag.successors(f).is_empty() {
                actions.push(MasterAction::ExitComplete {
                    workflow,
                    invocation,
                    function: f,
                });
            }
            let tracker = self
                .invocations
                .get_mut(&(workflow, invocation))
                .expect("tracker alive during propagation");
            for s in tracker.successors_to_notify(f) {
                let tracker = self
                    .invocations
                    .get_mut(&(workflow, invocation))
                    .expect("tracker alive");
                if tracker.predecessor_done(s) {
                    if ctx.dag.node(s).kind.is_function() {
                        triggered.push(s);
                    } else {
                        // Virtual node: completes instantly in the master.
                        if tracker.instance_done(s) {
                            completed.push(s);
                        }
                    }
                }
            }
        }
        actions.extend(self.dispatch(workflow, invocation, triggered));
        actions
    }

    /// Emits task assignments for triggered *function* nodes; virtual
    /// entry nodes cascade inline.
    fn dispatch(
        &mut self,
        workflow: WorkflowId,
        invocation: InvocationId,
        triggered: Vec<FunctionId>,
    ) -> Vec<MasterAction> {
        let ctx = self
            .workflows
            .get(&workflow)
            .expect("dispatch on uninstalled workflow")
            .clone();
        let mut actions = Vec::new();
        for f in triggered {
            if ctx.dag.node(f).kind.is_function() {
                self.stats.tasks_assigned.inc();
                actions.push(MasterAction::AssignTask {
                    worker: ctx.assignment.worker_of(f),
                    workflow,
                    invocation,
                    function: f,
                });
            } else {
                // A virtual entry node: complete inline and cascade.
                let tracker = self
                    .invocations
                    .get_mut(&(workflow, invocation))
                    .expect("tracker alive in dispatch");
                if tracker.instance_done(f) {
                    actions.extend(self.node_completed(workflow, invocation, f));
                }
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasflow_scheduler::{ContentionSet, GraphScheduler, RuntimeMetrics, WorkerInfo};
    use faasflow_sim::SimRng;
    use faasflow_wdl::{DagParser, FunctionProfile, Step, Workflow};

    const WF: WorkflowId = WorkflowId::new(0);
    const INV: InvocationId = InvocationId::new(0);

    fn build(step: Step, workers: u32) -> (Arc<WorkflowDag>, MasterEngine) {
        let wf = Workflow::steps("m", step);
        let dag = Arc::new(DagParser::default().parse(&wf).unwrap());
        let metrics = RuntimeMetrics::initial(&dag);
        let ws: Vec<WorkerInfo> = (0..workers)
            .map(|i| WorkerInfo::new(NodeId::new(i + 1), 64))
            .collect();
        let mut rng = SimRng::seed_from(3);
        let asg = Arc::new(
            GraphScheduler::default()
                .partition(
                    &dag,
                    &ws,
                    &metrics,
                    &ContentionSet::default(),
                    u64::MAX,
                    &mut rng,
                )
                .unwrap(),
        );
        let mut eng = MasterEngine::new();
        eng.install(WF, dag.clone(), asg, 11);
        (dag, eng)
    }

    fn p(out: u64) -> FunctionProfile {
        FunctionProfile::with_millis(1, out)
    }

    #[test]
    fn chain_assigns_one_task_at_a_time() {
        let (_dag, mut eng) = build(
            Step::sequence(vec![
                Step::task("a", p(10)),
                Step::task("b", p(10)),
                Step::task("c", p(0)),
            ]),
            2,
        );
        let first = eng.begin_invocation(WF, INV);
        assert_eq!(first.len(), 1);
        let MasterAction::AssignTask { function: a, .. } = first[0] else {
            panic!("expected an assignment");
        };
        assert_eq!(a, FunctionId::new(0));
        let second = eng.on_state_return(WF, INV, a);
        assert_eq!(second.len(), 1);
        assert_eq!(eng.stats().tasks_assigned.get(), 2);
        assert_eq!(eng.stats().state_returns.get(), 1);
    }

    #[test]
    fn parallel_assigns_both_branches_at_once() {
        let (dag, mut eng) = build(
            Step::sequence(vec![
                Step::task("a", p(10)),
                Step::parallel(vec![Step::task("x", p(1)), Step::task("y", p(1))]),
            ]),
            2,
        );
        let first = eng.begin_invocation(WF, INV);
        let MasterAction::AssignTask { function: a, .. } = first[0] else {
            panic!("expected an assignment");
        };
        // a completes; the parallel virtual start cascades inline and both
        // branches are assigned together.
        let actions = eng.on_state_return(WF, INV, a);
        let assigned: Vec<FunctionId> = actions
            .iter()
            .filter_map(|act| match act {
                MasterAction::AssignTask { function, .. } => Some(*function),
                _ => None,
            })
            .collect();
        assert_eq!(assigned.len(), 2);
        for f in &assigned {
            assert!(dag.node(*f).kind.is_function());
        }
    }

    #[test]
    fn exit_complete_fires_at_the_sink() {
        let (_dag, mut eng) = build(
            Step::sequence(vec![Step::task("a", p(10)), Step::task("b", p(0))]),
            1,
        );
        let first = eng.begin_invocation(WF, INV);
        let MasterAction::AssignTask { function: a, .. } = first[0] else {
            panic!("expected an assignment");
        };
        let second = eng.on_state_return(WF, INV, a);
        let MasterAction::AssignTask { function: b, .. } = second[0] else {
            panic!("expected an assignment");
        };
        let last = eng.on_state_return(WF, INV, b);
        assert!(matches!(last[0], MasterAction::ExitComplete { function, .. } if function == b));
    }

    #[test]
    fn foreach_waits_for_all_state_returns() {
        let (dag, mut eng) = build(Step::foreach("fe", p(0), 3), 2);
        let fe = dag.nodes().iter().find(|n| n.name == "fe").unwrap().id;
        let first = eng.begin_invocation(WF, INV);
        // Entry is the virtual bracket, which cascades inline to assign fe.
        let assigned: Vec<FunctionId> = first
            .iter()
            .filter_map(|a| match a {
                MasterAction::AssignTask { function, .. } => Some(*function),
                _ => None,
            })
            .collect();
        assert_eq!(assigned, vec![fe]);
        assert!(eng.on_state_return(WF, INV, fe).is_empty());
        assert!(eng.on_state_return(WF, INV, fe).is_empty());
        let done = eng.on_state_return(WF, INV, fe);
        assert!(
            done.iter()
                .any(|a| matches!(a, MasterAction::ExitComplete { .. })),
            "third return completes the foreach and the workflow"
        );
    }

    #[test]
    fn release_frees_state() {
        let (_dag, mut eng) = build(Step::task("a", p(0)), 1);
        eng.begin_invocation(WF, INV);
        assert_eq!(eng.live_invocations(), 1);
        eng.release_invocation(WF, INV);
        assert_eq!(eng.live_invocations(), 0);
    }
}
