//! Edge cases of the engine protocols that the unit tests don't reach:
//! out-of-order state syncs, re-installation (partition iterations),
//! any-join deduplication, and multi-invocation isolation.

use std::sync::Arc;

use faasflow_engine::{WorkerAction, WorkerEngine};
use faasflow_scheduler::{Assignment, Group};
use faasflow_sim::{FunctionId, GroupId, InvocationId, NodeId, WorkflowId};
use faasflow_wdl::{DagParser, FunctionProfile, Step, SwitchCase, Workflow, WorkflowDag};

const WF: WorkflowId = WorkflowId::new(0);

fn p() -> FunctionProfile {
    FunctionProfile::with_millis(1, 1000)
}

/// A fan-in: {a, b} -> c, with a+c on worker 1 and b on worker 2.
fn fan_in() -> (Arc<WorkflowDag>, Arc<Assignment>) {
    let wf = Workflow::steps(
        "fan",
        Step::sequence(vec![
            Step::parallel(vec![Step::task("a", p()), Step::task("b", p())]),
            Step::task("c", p()),
        ]),
    );
    let dag = Arc::new(DagParser::default().parse(&wf).unwrap());
    let (w1, w2) = (NodeId::new(1), NodeId::new(2));
    // Nodes: vs, a, b, ve, c (ids in parse order).
    let by_name = |n: &str| dag.nodes().iter().find(|x| x.name == n).unwrap().id;
    let (a, b, c) = (by_name("a"), by_name("b"), by_name("c"));
    let mut node_of = vec![w1; dag.node_count()];
    node_of[b.index()] = w2;
    let mut members_w1: Vec<FunctionId> = (0..dag.node_count())
        .map(FunctionId::from)
        .filter(|f| *f != b)
        .collect();
    members_w1.sort_unstable();
    let assignment = Arc::new(Assignment {
        groups: vec![
            Group {
                id: GroupId::new(0),
                members: members_w1,
                worker: w1,
                capacity_needed: 2,
            },
            Group {
                id: GroupId::new(1),
                members: vec![b],
                worker: w2,
                capacity_needed: 1,
            },
        ],
        node_of,
        group_of: (0..dag.node_count())
            .map(|i| {
                if FunctionId::from(i) == b {
                    GroupId::new(1)
                } else {
                    GroupId::new(0)
                }
            })
            .collect(),
        storage_local: vec![false; dag.node_count()],
        mem_consume: 0,
        quota: 0,
    });
    let _ = (a, c);
    (dag, assignment)
}

fn engines(dag: &Arc<WorkflowDag>, asg: &Arc<Assignment>) -> (WorkerEngine, WorkerEngine) {
    let mut e1 = WorkerEngine::new(NodeId::new(1));
    let mut e2 = WorkerEngine::new(NodeId::new(2));
    e1.install(WF, dag.clone(), asg.clone(), 3);
    e2.install(WF, dag.clone(), asg.clone(), 3);
    (e1, e2)
}

/// Walks an action list, completing any local virtual/function trigger
/// inline, and returns every TriggerFunction target seen.
fn drain_local(
    engine: &mut WorkerEngine,
    inv: InvocationId,
    mut actions: Vec<WorkerAction>,
) -> (Vec<FunctionId>, Vec<WorkerAction>) {
    let mut triggered = Vec::new();
    let mut external = Vec::new();
    while let Some(action) = actions.pop() {
        match action {
            WorkerAction::TriggerFunction { function, .. } => {
                triggered.push(function);
                actions.extend(engine.on_instance_complete(WF, inv, function));
            }
            other => external.push(other),
        }
    }
    (triggered, external)
}

#[test]
fn sync_arriving_before_begin_still_works() {
    // Worker 2 learns about a remote completion before it ever saw the
    // invocation begin — §3.1's decentralized engines must cope, because
    // message timing across workers is unordered.
    let (dag, asg) = fan_in();
    let (mut e1, mut e2) = engines(&dag, &asg);
    let inv = InvocationId::new(9);
    // Worker 1 runs the virtual start and `a`; worker 2 has NOT begun.
    let begin = e1.begin_invocation(WF, inv);
    let (_, external) = drain_local(&mut e1, inv, begin);
    // The virtual start's completion must have produced a sync to w2.
    let sync = external
        .iter()
        .find_map(|a| match a {
            WorkerAction::SyncState { to, completed, .. } if to.index() == 2 => Some(*completed),
            _ => None,
        })
        .expect("cross-worker successor b needs a sync");
    // Deliver it to worker 2 *before* any begin call.
    let actions = e2.on_state_sync(WF, inv, sync);
    let (triggered, _) = drain_local(&mut e2, inv, actions);
    let b = dag.nodes().iter().find(|x| x.name == "b").unwrap().id;
    assert_eq!(triggered, vec![b], "b triggers from the sync alone");
}

#[test]
fn reinstall_keeps_state_machines_consistent() {
    // A partition iteration re-installs the workflow mid-flight; engines
    // must keep serving existing invocations (red-black: old invocations
    // hold their own Arc snapshots through the tracker).
    let (dag, asg) = fan_in();
    let (mut e1, _e2) = engines(&dag, &asg);
    let inv = InvocationId::new(0);
    let begin = e1.begin_invocation(WF, inv);
    // Re-install with the same structures (a fresh version).
    e1.install(WF, dag.clone(), asg.clone(), 3);
    let (triggered, _) = drain_local(&mut e1, inv, begin);
    assert!(!triggered.is_empty(), "existing invocation keeps running");
}

#[test]
fn any_join_triggers_once_for_multiple_arms() {
    // A switch where both arms' workers race their completions at the
    // virtual end: the end node must trigger exactly once.
    let wf = Workflow::steps(
        "sw",
        Step::sequence(vec![
            Step::switch(vec![
                SwitchCase::new("x", Step::task("x", p())),
                SwitchCase::new("y", Step::task("y", p())),
            ]),
            Step::task("after", p()),
        ]),
    );
    let dag = Arc::new(DagParser::default().parse(&wf).unwrap());
    let w1 = NodeId::new(1);
    let assignment = Arc::new(Assignment {
        groups: vec![Group {
            id: GroupId::new(0),
            members: (0..dag.node_count()).map(FunctionId::from).collect(),
            worker: w1,
            capacity_needed: 3,
        }],
        node_of: vec![w1; dag.node_count()],
        group_of: vec![GroupId::new(0); dag.node_count()],
        storage_local: vec![false; dag.node_count()],
        mem_consume: 0,
        quota: 0,
    });
    let mut engine = WorkerEngine::new(w1);
    engine.install(WF, dag.clone(), assignment, 3);
    for inv_idx in 0..16 {
        let inv = InvocationId::new(inv_idx);
        let begin = engine.begin_invocation(WF, inv);
        let (triggered, external) = drain_local(&mut engine, inv, begin);
        // Exactly one arm + brackets + after; never both arms.
        let x = dag.nodes().iter().find(|n| n.name == "x").unwrap().id;
        let y = dag.nodes().iter().find(|n| n.name == "y").unwrap().id;
        let ran_x = triggered.contains(&x);
        let ran_y = triggered.contains(&y);
        assert!(ran_x ^ ran_y, "exactly one switch arm per invocation");
        let after = dag.nodes().iter().find(|n| n.name == "after").unwrap().id;
        assert_eq!(
            triggered.iter().filter(|&&f| f == after).count(),
            1,
            "the any-join must fire exactly once"
        );
        assert!(
            external
                .iter()
                .all(|a| matches!(a, WorkerAction::ExitComplete { .. })),
            "single-worker run emits no syncs"
        );
        engine.release_invocation(WF, inv);
    }
    assert_eq!(engine.live_invocations(), 0);
}

#[test]
fn concurrent_invocations_do_not_interfere() {
    let (dag, asg) = fan_in();
    let (mut e1, _) = engines(&dag, &asg);
    // Interleave two invocations through worker 1 only.
    let i0 = InvocationId::new(0);
    let i1 = InvocationId::new(1);
    let b0 = e1.begin_invocation(WF, i0);
    let b1 = e1.begin_invocation(WF, i1);
    let (t0, _) = drain_local(&mut e1, i0, b0);
    let (t1, _) = drain_local(&mut e1, i1, b1);
    assert_eq!(t0, t1, "identical workflows take identical local paths");
    assert_eq!(e1.live_invocations(), 2);
    e1.release_invocation(WF, i0);
    assert_eq!(e1.live_invocations(), 1);
}
