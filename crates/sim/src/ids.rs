//! Identifiers for simulated entities.
//!
//! These newtypes are defined in the kernel crate because they cross every
//! layer of the system: the network addresses [`NodeId`]s, the scheduler
//! assigns [`GroupId`]s of [`FunctionId`]s to nodes, the engines key their
//! state by ([`WorkflowId`], [`InvocationId`]) exactly as the paper's
//! `Workflow{State, FunctionInfo}` structures do (§3.1).

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates the identifier from its raw index.
            pub const fn new(index: u32) -> Self {
                $name(index)
            }

            /// The raw index, usable for dense `Vec` indexing.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            fn from(index: u32) -> Self {
                $name(index)
            }
        }

        impl From<usize> for $name {
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            fn from(index: usize) -> Self {
                $name(u32::try_from(index).expect("id index exceeds u32"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// A node of the simulated cluster (worker, master, or storage node).
    NodeId,
    "node"
);

define_id!(
    /// A function node within one workflow's DAG (virtual nodes included).
    FunctionId,
    "fn"
);

define_id!(
    /// A workflow registered with the cluster.
    WorkflowId,
    "wf"
);

define_id!(
    /// One invocation of a workflow — the paper's `InvocationID` (§3.1).
    InvocationId,
    "inv"
);

define_id!(
    /// A container instance on some node.
    ContainerId,
    "ctr"
);

define_id!(
    /// A function group produced by the graph partitioner (Algorithm 1).
    GroupId,
    "grp"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_display() {
        let n = NodeId::new(3);
        assert_eq!(n.index(), 3);
        assert_eq!(n.to_string(), "node3");
        assert_eq!(NodeId::from(3usize), n);
        assert_eq!(NodeId::from(3u32), n);
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(FunctionId::new(1) < FunctionId::new(2));
        assert_eq!(WorkflowId::default(), WorkflowId::new(0));
    }

    #[test]
    #[should_panic(expected = "exceeds u32")]
    fn oversized_index_panics() {
        let _ = InvocationId::from(usize::MAX);
    }
}
