//! # faasflow-sim
//!
//! Deterministic discrete-event simulation (DES) kernel used by every other
//! crate of the FaaSFlow reproduction.
//!
//! The kernel is intentionally small and generic:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated clock.
//! * [`EventQueue`] — a cancellable priority queue of user-defined events,
//!   totally ordered by `(time, sequence-number)` so that runs are
//!   byte-for-byte reproducible.
//! * [`SimRng`] — a seedable SplitMix64 generator, sufficient for the
//!   jitter/sampling needs of the cluster model and fully deterministic.
//! * [`stats`] — counters, gauges and exact-sample histograms used for the
//!   paper's latency/percentile/overhead metrics.
//!
//! The kernel deliberately does **not** own the event loop: the world (see
//! `faasflow-core`) pops events and dispatches them, which keeps this crate
//! free of knowledge about networks, containers or engines.
//!
//! ```
//! use faasflow_sim::{EventQueue, SimTime, SimDuration};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(5), "later");
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(1), "sooner");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "sooner");
//! assert_eq!(t, SimTime::from_nanos(1_000_000));
//! ```

pub mod event;
pub mod ids;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::{EventId, EventQueue};
pub use ids::{ContainerId, FunctionId, GroupId, InvocationId, NodeId, WorkflowId};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
