//! Cancellable, deterministic event queue.
//!
//! Events are ordered by `(time, sequence number)`: two events scheduled for
//! the same instant fire in the order they were scheduled, which makes every
//! simulation run reproducible regardless of hash-map iteration order or
//! allocator behaviour elsewhere.
//!
//! Cancellation uses lazy deletion: [`EventQueue::cancel`] marks the
//! [`EventId`] and [`EventQueue::pop`] silently discards marked entries when
//! they surface. This keeps both operations `O(log n)`/`O(1)` and is the
//! standard technique for DES kernels with timer-heavy workloads (the flow
//! network reschedules its completion timer on every flow change).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// Token identifying a scheduled event, usable to cancel it later.
///
/// Ids are unique across the lifetime of one [`EventQueue`] and never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

// BinaryHeap is a max-heap; reverse the ordering to pop the earliest entry.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

/// A deterministic, cancellable priority queue of simulation events.
///
/// `is_empty` takes `&mut self` (it prunes lazily-cancelled heads), which
/// clippy's `len_without_is_empty` pairing does not anticipate.
///
/// The type parameter `E` is the caller's event payload; the queue imposes
/// no trait bounds on it.
///
/// ```
/// use faasflow_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let keep = q.schedule(SimTime::from_nanos(10), "keep");
/// let drop = q.schedule(SimTime::from_nanos(5), "drop");
/// assert!(q.cancel(drop));
/// let _ = keep;
/// assert_eq!(q.pop().map(|(_, e)| e), Some("keep"));
/// assert!(q.pop().is_none());
/// ```
#[allow(clippy::len_without_is_empty)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Sequence numbers currently in the heap and not cancelled.
    live: HashSet<u64>,
    /// Sequence numbers in the heap whose entries must be discarded on pop.
    cancelled: HashSet<u64>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            live: HashSet::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The instant of the most recently popped event (the "current" simulated
    /// time from the world's perspective).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire at `time` and returns a cancellation token.
    ///
    /// Scheduling in the past is a logic error in the caller and panics: a
    /// DES must never move its clock backwards.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the instant of the last popped event.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventId {
        assert!(
            time >= self.now,
            "cannot schedule an event at {time} before the current time {now}",
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.insert(seq);
        self.heap.push(Entry { time, seq, event });
        EventId(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired (and will now never
    /// fire), `false` if it already fired or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.live.remove(&id.0) {
            self.cancelled.insert(id.0);
            true
        } else {
            false
        }
    }

    /// Removes and returns the earliest pending event, advancing the clock.
    ///
    /// Cancelled entries are skipped transparently. Returns `None` when the
    /// queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.live.remove(&entry.seq);
            self.now = entry.time;
            return Some((entry.time, entry.event));
        }
        None
    }

    /// The instant of the earliest pending (non-cancelled) event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.time);
        }
        None
    }

    /// Number of pending entries, *including* lazily cancelled ones.
    ///
    /// This is an upper bound on live events; use [`EventQueue::is_empty`]
    /// for an exact emptiness check.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no live event is pending.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("cancelled_pending", &self.cancelled.len())
            .field("now", &self.now)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), "a");
        q.schedule(SimTime::from_nanos(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn cancel_after_fire_is_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), "a");
        assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
        assert!(!q.cancel(a), "cancelling a fired event must report false");
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(7), ());
        q.schedule(SimTime::from_nanos(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(7));
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(9));
    }

    #[test]
    #[should_panic(expected = "before the current time")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule(SimTime::from_nanos(5), ());
    }

    #[test]
    fn peek_skips_cancelled_heads() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), "a");
        q.schedule(SimTime::from_nanos(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(2)));
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }
}
