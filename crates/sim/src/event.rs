//! Cancellable, deterministic event queue.
//!
//! Events are ordered by `(time, sequence number)`: two events scheduled for
//! the same instant fire in the order they were scheduled, which makes every
//! simulation run reproducible regardless of hash-map iteration order or
//! allocator behaviour elsewhere.
//!
//! The queue is a slab-indexed d-ary heap: the heap array stores slot
//! indices into a slab of event slots, and each slot tracks its current
//! heap position. That makes [`EventQueue::cancel`] a true `O(log n)`
//! removal (no tombstones to skip later) and [`EventQueue::peek_time`] /
//! [`EventQueue::is_empty`] exact `O(1)` reads — with no hashing anywhere
//! on the hot path. Slots are recycled through a free list; a per-slot
//! generation counter keeps recycled [`EventId`]s from aliasing, so
//! cancelling a fired or already-cancelled event stays a cheap, safe no-op.
//!
//! The arity is 4: sift-down touches 4 children per level but the tree is
//! half as deep as a binary heap's, which wins on timer-heavy workloads
//! (the flow network reschedules its completion timer on every flow
//! change, an insert-then-cancel pattern that rarely sinks far).

use crate::time::SimTime;

/// Heap arity. Four children per node halves the tree depth relative to a
/// binary heap; sift-up (the common case for timer churn) only compares
/// against parents, so it gets the full depth win.
const D: usize = 4;

/// Token identifying a scheduled event, usable to cancel it later.
///
/// Ids are unique across the lifetime of one [`EventQueue`]: slot storage
/// is recycled, but a generation counter embedded in the id keeps stale
/// tokens from ever matching a reused slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    fn new(slot: u32, gen: u32) -> Self {
        EventId((u64::from(slot) << 32) | u64::from(gen))
    }

    fn slot(self) -> usize {
        (self.0 >> 32) as usize
    }

    fn gen(self) -> u32 {
        self.0 as u32
    }
}

/// One heap entry: the ordering key inline (so sifts compare within the
/// contiguous heap array, never chasing into the slab) plus the index of
/// the slot holding the payload.
#[derive(Clone, Copy)]
struct HeapEntry {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl HeapEntry {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// One slab entry. `event` is `Some` while the event is pending; `pos` is
/// the slot's current index in the heap array and is kept in sync by every
/// sift. `gen` increments each time the slot is recycled.
struct Slot<E> {
    gen: u32,
    pos: u32,
    event: Option<E>,
}

/// A deterministic, cancellable priority queue of simulation events.
///
/// The type parameter `E` is the caller's event payload; the queue imposes
/// no trait bounds on it.
///
/// ```
/// use faasflow_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let keep = q.schedule(SimTime::from_nanos(10), "keep");
/// let drop = q.schedule(SimTime::from_nanos(5), "drop");
/// assert!(q.cancel(drop));
/// let _ = keep;
/// assert_eq!(q.pop().map(|(_, e)| e), Some("keep"));
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    /// d-ary heap ordered by `(time, seq)`; keys are stored inline.
    heap: Vec<HeapEntry>,
    /// Slab of event payloads; indices are stable while an event is pending.
    slots: Vec<Slot<E>>,
    /// Recycled slot indices available for the next `schedule`.
    free: Vec<u32>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The instant of the most recently popped event (the "current" simulated
    /// time from the world's perspective).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire at `time` and returns a cancellation token.
    ///
    /// Scheduling in the past is a logic error in the caller and panics: a
    /// DES must never move its clock backwards.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the instant of the last popped event.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventId {
        assert!(
            time >= self.now,
            "cannot schedule an event at {time} before the current time {now}",
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let pos = self.heap.len() as u32;
        let slot = match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                s.pos = pos;
                s.event = Some(event);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("slab capacity exceeded");
                self.slots.push(Slot {
                    gen: 0,
                    pos,
                    event: Some(event),
                });
                slot
            }
        };
        self.heap.push(HeapEntry { time, seq, slot });
        let gen = self.slots[slot as usize].gen;
        self.sift_up(pos as usize);
        EventId::new(slot, gen)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired (and will now never
    /// fire), `false` if it already fired or was already cancelled. A true
    /// cancel removes the entry from the heap immediately — nothing lingers
    /// to slow later pops.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let slot = id.slot();
        if slot >= self.slots.len() {
            return false;
        }
        let s = &mut self.slots[slot];
        if s.gen != id.gen() || s.event.is_none() {
            return false;
        }
        s.event = None;
        let pos = s.pos as usize;
        self.release(slot as u32);
        self.remove_at(pos);
        true
    }

    /// Removes and returns the earliest pending event, advancing the clock.
    ///
    /// Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let &HeapEntry { time, slot, .. } = self.heap.first()?;
        let event = self.slots[slot as usize]
            .event
            .take()
            .expect("heap entries are pending");
        self.now = time;
        self.release(slot);
        self.remove_at(0);
        Some((time, event))
    }

    /// The instant of the earliest pending event. `O(1)`.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|entry| entry.time)
    }

    /// Number of pending events. Exact: cancelled events leave the queue
    /// immediately.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no event is pending. `O(1)`.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Recycles `slot` for reuse, invalidating any outstanding [`EventId`]s
    /// pointing at it.
    fn release(&mut self, slot: u32) {
        self.slots[slot as usize].gen = self.slots[slot as usize].gen.wrapping_add(1);
        self.free.push(slot);
    }

    /// Removes the heap entry at `pos`, restoring the heap property.
    fn remove_at(&mut self, pos: usize) {
        let last = self.heap.pop().expect("remove_at on non-empty heap");
        if pos == self.heap.len() {
            return;
        }
        self.heap[pos] = last;
        self.slots[last.slot as usize].pos = pos as u32;
        // The relocated key may be smaller than the removed one's parent or
        // larger than its children; try both directions (one is a no-op).
        self.sift_down(pos);
        self.sift_up(self.slots[last.slot as usize].pos as usize);
    }

    fn sift_up(&mut self, mut pos: usize) {
        let entry = self.heap[pos];
        let key = entry.key();
        while pos > 0 {
            let parent = (pos - 1) / D;
            let parent_entry = self.heap[parent];
            if parent_entry.key() <= key {
                break;
            }
            self.heap[pos] = parent_entry;
            self.slots[parent_entry.slot as usize].pos = pos as u32;
            pos = parent;
        }
        self.heap[pos] = entry;
        self.slots[entry.slot as usize].pos = pos as u32;
    }

    fn sift_down(&mut self, mut pos: usize) {
        let entry = self.heap[pos];
        let key = entry.key();
        let len = self.heap.len();
        loop {
            let first_child = pos * D + 1;
            if first_child >= len {
                break;
            }
            let mut best = first_child;
            let mut best_key = self.heap[first_child].key();
            let end = (first_child + D).min(len);
            for child in first_child + 1..end {
                let k = self.heap[child].key();
                if k < best_key {
                    best = child;
                    best_key = k;
                }
            }
            if best_key >= key {
                break;
            }
            let child_entry = self.heap[best];
            self.heap[pos] = child_entry;
            self.slots[child_entry.slot as usize].pos = pos as u32;
            pos = best;
        }
        self.heap[pos] = entry;
        self.slots[entry.slot as usize].pos = pos as u32;
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("slab", &self.slots.len())
            .field("now", &self.now)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn ties_survive_slot_recycling() {
        // Recycled slots must not leak stale ordering: the tie-break is the
        // monotonic sequence number, never the slot index.
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(5), 0);
        q.cancel(a);
        let t = SimTime::from_nanos(5);
        for i in 1..50 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (1..50).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), "a");
        q.schedule(SimTime::from_nanos(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
    }

    #[test]
    fn cancel_removes_immediately() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), "a");
        q.schedule(SimTime::from_nanos(2), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1, "true cancellation leaves no tombstone");
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
        assert!(!q.cancel(EventId::new(7, 0)), "slot never allocated");
    }

    #[test]
    fn cancel_after_fire_is_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), "a");
        assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
        assert!(!q.cancel(a), "cancelling a fired event must report false");
    }

    #[test]
    fn stale_id_does_not_cancel_recycled_slot() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), "a");
        assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
        // "b" reuses a's slot; a's stale token must not touch it.
        let _b = q.schedule(SimTime::from_nanos(2), "b");
        assert!(!q.cancel(a));
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(7), ());
        q.schedule(SimTime::from_nanos(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(7));
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(9));
    }

    #[test]
    #[should_panic(expected = "before the current time")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule(SimTime::from_nanos(5), ());
    }

    #[test]
    fn peek_skips_cancelled_heads() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), "a");
        q.schedule(SimTime::from_nanos(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(2)));
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn interior_cancel_keeps_heap_ordered() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..64)
            .map(|i| q.schedule(SimTime::from_nanos(1000 - i * 7), i))
            .collect();
        let mut cancelled = 0;
        for (i, id) in ids.iter().enumerate() {
            if i % 3 == 1 {
                assert!(q.cancel(*id));
                cancelled += 1;
            }
        }
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some((t, e)) = q.pop() {
            assert!(t >= last, "pops must stay time-ordered after cancels");
            assert_ne!(e % 3, 1, "cancelled events must not fire");
            last = t;
            n += 1;
        }
        assert_eq!(n, 64 - cancelled);
    }
}
