//! Measurement primitives for the evaluation harness.
//!
//! The paper reports average scheduling overheads (Figures 4 & 11), exact
//! 99-percentile latencies (Figures 12 & 13), data-movement totals
//! (Table 4, Figure 5) and CPU/memory usage series (Figure 16). All of
//! those reduce to three primitives:
//!
//! * [`Counter`] — monotonically increasing totals (bytes moved, messages).
//! * [`Gauge`] — instantaneous values with a running peak (memory in use).
//! * [`Histogram`] — an exact-sample reservoir with percentile queries.
//!   Experiments run at most a few hundred thousand invocations, so storing
//!   every sample is cheap and gives *exact* percentiles rather than the
//!   approximations an HDR sketch would.

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// A monotonically increasing counter.
///
/// ```
/// use faasflow_sim::stats::Counter;
/// let mut c = Counter::new();
/// c.add(3);
/// c.add(4);
/// assert_eq!(c.get(), 7);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds `delta` to the counter.
    pub fn add(&mut self, delta: u64) {
        self.0 = self
            .0
            .checked_add(delta)
            .expect("counter overflow — totals exceed u64");
    }

    /// Increments the counter by one.
    pub fn inc(&mut self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(self) -> u64 {
        self.0
    }
}

/// An instantaneous value with a recorded peak.
///
/// ```
/// use faasflow_sim::stats::Gauge;
/// let mut g = Gauge::new();
/// g.add(10);
/// g.sub(4);
/// assert_eq!(g.get(), 6);
/// assert_eq!(g.peak(), 10);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gauge {
    value: u64,
    peak: u64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Raises the gauge by `delta`, updating the peak.
    pub fn add(&mut self, delta: u64) {
        self.value = self
            .value
            .checked_add(delta)
            .expect("gauge overflow — value exceeds u64");
        self.peak = self.peak.max(self.value);
    }

    /// Lowers the gauge by `delta`.
    ///
    /// # Panics
    ///
    /// Panics if the gauge would go negative — that always indicates a
    /// double-release bug in the caller, which we want loud.
    pub fn sub(&mut self, delta: u64) {
        self.value = self
            .value
            .checked_sub(delta)
            .expect("gauge underflow — released more than was acquired");
    }

    /// Sets the gauge to an absolute value, updating the peak.
    pub fn set(&mut self, value: u64) {
        self.value = value;
        self.peak = self.peak.max(value);
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.value
    }

    /// Highest value ever observed.
    pub fn peak(self) -> u64 {
        self.peak
    }
}

/// An exact-sample histogram with percentile queries.
///
/// Samples are `f64` in whatever unit the caller chooses (the harness uses
/// milliseconds). Percentiles use the nearest-rank method on the sorted
/// sample set, matching how the paper's scripts compute "99%-ile latency".
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN — a NaN latency is always an upstream bug.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "cannot record NaN into a histogram");
        self.samples.push(value);
        self.sorted = false;
    }

    /// Records a duration, in milliseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_millis_f64());
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::max)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// The `q`-quantile (`q` in `[0, 1]`) by the nearest-rank method, or
    /// `None` when empty.
    ///
    /// `quantile(0.99)` is the paper's "99%-ile latency".
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN recorded"));
            self.sorted = true;
        }
        let n = self.samples.len();
        // Nearest-rank: smallest index i with (i+1)/n >= q.
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.samples[rank - 1])
    }

    /// Convenience for [`Histogram::quantile`]`(0.99)`.
    pub fn p99(&mut self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Convenience for [`Histogram::quantile`]`(0.50)`.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// A compact owned summary (for reports crossing thread boundaries).
    pub fn summary(&mut self) -> Summary {
        Summary {
            count: self.len() as u64,
            mean: self.mean().unwrap_or(0.0),
            min: self.min().unwrap_or(0.0),
            max: self.max().unwrap_or(0.0),
            median: self.median().unwrap_or(0.0),
            p99: self.p99().unwrap_or(0.0),
            sum: self.sum(),
        }
    }

    /// Read-only access to the raw samples (unsorted order not guaranteed).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// A time-weighted value tracker: integrates a piecewise-constant signal
/// (busy cores, resident bytes) over simulated time, yielding exact
/// time-averaged utilisation without any sampling events.
///
/// ```
/// use faasflow_sim::stats::TimeWeighted;
/// use faasflow_sim::SimTime;
///
/// let mut u = TimeWeighted::new();
/// u.update(SimTime::from_secs_f64(0.0), 4.0); // 4 cores busy from t=0
/// u.update(SimTime::from_secs_f64(2.0), 0.0); // idle from t=2
/// assert_eq!(u.mean(SimTime::from_secs_f64(4.0)), 2.0);
/// assert_eq!(u.peak(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeWeighted {
    integral: f64,
    value: f64,
    peak: f64,
    last_update: SimTime,
}

impl TimeWeighted {
    /// Creates a tracker at value 0 from [`SimTime::ZERO`].
    pub fn new() -> Self {
        TimeWeighted::default()
    }

    /// Sets the signal's value from `now` onwards.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous update or `value` is not
    /// finite.
    pub fn update(&mut self, now: SimTime, value: f64) {
        assert!(value.is_finite(), "time-weighted value must be finite");
        assert!(
            now >= self.last_update,
            "time-weighted updates must be monotone"
        );
        self.integral += self.value * (now - self.last_update).as_secs_f64();
        self.last_update = now;
        self.value = value;
        self.peak = self.peak.max(value);
    }

    /// The current value.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// The largest value ever set.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// The exact time average over `[0, now]` (0 for an empty window).
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the last update.
    pub fn mean(&self, now: SimTime) -> f64 {
        assert!(
            now >= self.last_update,
            "mean window ends before last update"
        );
        let total = now.as_secs_f64();
        if total == 0.0 {
            return 0.0;
        }
        let integral = self.integral + self.value * (now - self.last_update).as_secs_f64();
        integral / total
    }
}

/// An owned snapshot of a [`Histogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// 50th percentile (nearest rank).
    pub median: f64,
    /// 99th percentile (nearest rank).
    pub p99: f64,
    /// Sum of all samples.
    pub sum: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn gauge_tracks_peak() {
        let mut g = Gauge::new();
        g.add(5);
        g.add(5);
        g.sub(7);
        assert_eq!(g.get(), 3);
        assert_eq!(g.peak(), 10);
        g.set(4);
        assert_eq!(g.peak(), 10);
        g.set(12);
        assert_eq!(g.peak(), 12);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn gauge_underflow_panics() {
        let mut g = Gauge::new();
        g.add(1);
        g.sub(2);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v as f64);
        }
        assert_eq!(h.quantile(0.99), Some(99.0));
        assert_eq!(h.quantile(1.0), Some(100.0));
        assert_eq!(h.quantile(0.0), Some(1.0)); // rank clamps to 1
        assert_eq!(h.median(), Some(50.0));
    }

    #[test]
    fn quantile_single_sample() {
        let mut h = Histogram::new();
        h.record(42.0);
        assert_eq!(h.p99(), Some(42.0));
        assert_eq!(h.median(), Some(42.0));
    }

    #[test]
    fn empty_histogram_returns_none() {
        let mut h = Histogram::new();
        assert_eq!(h.p99(), None);
        assert_eq!(h.mean(), None);
        assert!(h.is_empty());
    }

    #[test]
    fn summary_is_consistent() {
        let mut h = Histogram::new();
        for v in [4.0, 1.0, 3.0, 2.0] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.sum, 10.0);
        assert_eq!(s.median, 2.0);
    }

    #[test]
    fn record_after_quantile_resorts() {
        let mut h = Histogram::new();
        h.record(10.0);
        assert_eq!(h.max(), Some(10.0));
        assert_eq!(h.quantile(1.0), Some(10.0));
        h.record(5.0);
        assert_eq!(h.quantile(0.0), Some(5.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
    }

    #[test]
    fn time_weighted_integrates_exactly() {
        let mut u = TimeWeighted::new();
        let t = SimTime::from_secs_f64;
        u.update(t(0.0), 2.0);
        u.update(t(1.0), 6.0);
        u.update(t(2.0), 0.0);
        // 2*1 + 6*1 + 0*2 over 4s = 2.0
        assert_eq!(u.mean(t(4.0)), 2.0);
        assert_eq!(u.peak(), 6.0);
        assert_eq!(u.current(), 0.0);
    }

    #[test]
    fn time_weighted_empty_window_is_zero() {
        let u = TimeWeighted::new();
        assert_eq!(u.mean(SimTime::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn time_weighted_rejects_time_travel() {
        let mut u = TimeWeighted::new();
        u.update(SimTime::from_secs_f64(2.0), 1.0);
        u.update(SimTime::from_secs_f64(1.0), 1.0);
    }
}
