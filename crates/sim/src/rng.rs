//! Deterministic random number generation for the simulation.
//!
//! The cluster model needs modest randomness — latency jitter, hash-based
//! first-iteration placement, Poisson arrivals — and absolute
//! reproducibility. [`SimRng`] wraps the SplitMix64 generator (Steele et
//! al., OOPSLA 2014): 64 bits of state, full period, passes BigCrush when
//! used as here, and trivially seedable. Every component derives its own
//! stream via [`SimRng::fork`] so adding a random draw in one module never
//! perturbs another module's sequence.

/// A small, fast, deterministic generator (SplitMix64).
///
/// ```
/// use faasflow_sim::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed. Any seed, including 0, is valid.
    pub fn seed_from(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Derives an independent child stream, leaving `self`'s own sequence
    /// offset by one draw.
    ///
    /// Forked streams are statistically independent for the purposes of this
    /// simulation (distinct SplitMix64 seeds).
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.next_u64() ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, so it is unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below requires a positive bound");
        // Rejection sampling to remove modulo bias.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "range_f64 requires finite lo < hi, got [{lo}, {hi})"
        );
        lo + self.next_f64() * (hi - lo)
    }

    /// An exponentially distributed value with the given mean.
    ///
    /// Used for Poisson inter-arrival times in the open-loop client.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    pub fn exp_f64(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be finite and positive, got {mean}"
        );
        // Inverse transform; 1 - u avoids ln(0).
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.next_f64() < p
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// Returns `None` for an empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.next_below(items.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fork_produces_distinct_streams() {
        let mut root = SimRng::seed_from(7);
        let mut a = root.fork();
        let mut b = root.fork();
        let collisions = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::seed_from(1);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound_and_covers_values() {
        let mut rng = SimRng::seed_from(3);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            let v = rng.next_below(8) as usize;
            assert!(v < 8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::seed_from(11);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.exp_f64(5.0)).sum();
        let mean = sum / n as f64;
        assert!(
            (mean - 5.0).abs() < 0.1,
            "empirical mean {mean} too far from 5.0"
        );
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(13);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn pick_empty_is_none() {
        let mut rng = SimRng::seed_from(5);
        let empty: [u8; 0] = [];
        assert_eq!(rng.pick(&empty), None);
        assert_eq!(rng.pick(&[42]), Some(&42));
    }
}
