//! Simulated clock types.
//!
//! [`SimTime`] is an absolute instant on the simulated timeline and
//! [`SimDuration`] a span between instants. Both are newtypes over a `u64`
//! nanosecond count, which gives ~584 years of range — far beyond any
//! experiment in the paper — while keeping arithmetic exact (no floating
//! point drift across the event loop).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An absolute instant on the simulated timeline, in nanoseconds since the
/// start of the simulation.
///
/// ```
/// use faasflow_sim::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(3);
/// assert_eq!(t.as_secs_f64(), 0.003);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span between two [`SimTime`] instants, in nanoseconds.
///
/// ```
/// use faasflow_sim::SimDuration;
/// let d = SimDuration::from_micros(1500);
/// assert_eq!(d.as_millis_f64(), 1.5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from a raw nanosecond count.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `secs` seconds after the start of the simulation.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, non-finite, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_nanos(secs))
    }

    /// Raw nanosecond count since the start of the simulation.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This instant expressed in (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`.
    ///
    /// Returns [`SimDuration::ZERO`] when `earlier` is in the future, which
    /// makes latency accounting robust against zero-length events.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition; stays at [`SimTime::MAX`] on overflow.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span; used as an "infinite" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from a raw nanosecond count.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration of `secs` whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration of `secs` fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, non-finite, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_nanos(secs))
    }

    /// Creates a duration of `millis` fractional milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `millis` is negative, non-finite, or too large to represent.
    pub fn from_millis_f64(millis: f64) -> Self {
        SimDuration(secs_to_nanos(millis / 1e3))
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This span expressed in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This span expressed in (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction; clamps at zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by a non-negative factor, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "duration factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }
}

fn secs_to_nanos(secs: f64) -> u64 {
    assert!(
        secs.is_finite() && secs >= 0.0,
        "simulated seconds must be finite and non-negative, got {secs}"
    );
    let nanos = secs * 1e9;
    assert!(
        nanos <= u64::MAX as f64,
        "simulated time overflow: {secs} seconds"
    );
    nanos.round() as u64
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("simulated time overflow in SimTime + SimDuration"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(rhs.0)
                .expect("simulated duration overflow in SimDuration + SimDuration"),
        )
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(
            self.0
                .checked_mul(rhs)
                .expect("simulated duration overflow in SimDuration * u64"),
        )
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_nanos(1_500_000);
        let d = SimDuration::from_micros(500);
        assert_eq!((t + d).as_nanos(), 2_000_000);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.duration_since(t + d), SimDuration::ZERO);
    }

    #[test]
    fn conversions_are_exact_for_integral_units() {
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_secs(2).as_millis_f64(), 2000.0);
        assert_eq!(SimTime::from_secs_f64(1.25).as_nanos(), 1_250_000_000);
    }

    #[test]
    fn mul_f64_rounds_to_nanos() {
        let d = SimDuration::from_nanos(3);
        assert_eq!(d.mul_f64(0.5).as_nanos(), 2); // 1.5 rounds to 2
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_seconds_panic() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn saturating_ops_clamp() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        let small = SimDuration::from_nanos(1);
        let big = SimDuration::from_nanos(2);
        assert_eq!(small.saturating_sub(big), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_the_natural_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn min_max_behave() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = SimDuration::from_nanos(1);
        let y = SimDuration::from_nanos(2);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }
}
