//! Property tests: the event queue against a reference model.

use faasflow_sim::{EventQueue, SimTime};
use proptest::prelude::*;

/// Operations applied to both the real queue and a naive model.
#[derive(Debug, Clone)]
enum Op {
    Schedule(u64),
    CancelNth(usize),
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..1_000_000).prop_map(Op::Schedule),
        (0usize..64).prop_map(Op::CancelNth),
        Just(Op::Pop),
    ]
}

proptest! {
    /// The queue delivers exactly the non-cancelled events in
    /// (time, insertion) order, never travelling back in time.
    #[test]
    fn matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut q: EventQueue<usize> = EventQueue::new();
        // Model: (time, seq, id, cancelled)
        let mut model: Vec<(u64, usize, bool)> = Vec::new();
        let mut ids = Vec::new();
        let mut clock = 0u64;
        let mut seq = 0usize;

        for op in ops {
            match op {
                Op::Schedule(t) => {
                    // Never schedule in the past (the queue would panic by
                    // design); shift the time up to the clock.
                    let t = t.max(clock);
                    let id = q.schedule(SimTime::from_nanos(t), seq);
                    ids.push(id);
                    model.push((t, seq, false));
                    seq += 1;
                }
                Op::CancelNth(n) => {
                    if !ids.is_empty() {
                        let idx = n % ids.len();
                        // Live = neither cancelled nor already delivered.
                        let was_live = !model[idx].2 && model[idx].0 != u64::MAX;
                        let cancelled = q.cancel(ids[idx]);
                        prop_assert_eq!(cancelled, was_live);
                        if cancelled {
                            model[idx].2 = true;
                        }
                    }
                }
                Op::Pop => {
                    // Model pop: earliest (time, seq) among entries that are
                    // neither cancelled nor already delivered.
                    let expect = model
                        .iter()
                        .enumerate()
                        .filter(|(_, &(t, _, cancelled))| !cancelled && t != u64::MAX)
                        .min_by_key(|(_, &(t, s, _))| (t, s))
                        .map(|(i, &(t, s, _))| (i, t, s));
                    match (q.pop(), expect) {
                        (None, None) => {}
                        (Some((t, payload)), Some((i, mt, ms))) => {
                            prop_assert_eq!(t.as_nanos(), mt);
                            prop_assert_eq!(payload, ms);
                            prop_assert!(t.as_nanos() >= clock, "clock must not go back");
                            clock = t.as_nanos();
                            model[i].0 = u64::MAX; // mark delivered
                        }
                        (got, want) => {
                            return Err(TestCaseError::fail(format!(
                                "queue/model disagree: got {got:?}, want {want:?}"
                            )));
                        }
                    }
                }
            }
        }
        // Drain: everything left and live must come out in order.
        let mut last = clock;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t.as_nanos() >= last);
            last = t.as_nanos();
        }
    }
}
