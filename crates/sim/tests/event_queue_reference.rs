//! Randomized differential test: the slab-indexed heap against a
//! `BTreeMap<(SimTime, u64), E>` reference model.
//!
//! The reference is the ordering contract made executable — a sorted map
//! keyed by `(time, sequence)` pops its first entry. Long interleaved
//! schedule/cancel/pop/peek sequences from a seeded [`SimRng`] exercise
//! the patterns the cluster produces (timer churn: schedule, cancel,
//! reschedule), plus the adversarial ones: cancelling events that already
//! fired, cancelling twice, and cancelling with stale ids after their
//! slot was recycled.

use std::collections::BTreeMap;

use faasflow_sim::{EventId, EventQueue, SimRng, SimTime};

/// Reference model: a sorted map from `(time, seq)` to the payload, plus
/// the side table mapping ids to their key while pending.
#[derive(Default)]
struct Reference {
    queue: BTreeMap<(SimTime, u64), u64>,
    pending: BTreeMap<u64, (SimTime, u64)>,
    next_seq: u64,
    now: SimTime,
}

impl Reference {
    fn schedule(&mut self, time: SimTime, payload: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.insert((time, seq), payload);
        self.pending.insert(seq, (time, seq));
        seq
    }

    fn cancel(&mut self, seq: u64) -> bool {
        match self.pending.remove(&seq) {
            Some(key) => {
                self.queue.remove(&key);
                true
            }
            None => false,
        }
    }

    fn pop(&mut self) -> Option<(SimTime, u64)> {
        let (&(time, seq), &payload) = self.queue.iter().next()?;
        self.queue.remove(&(time, seq));
        self.pending.remove(&seq);
        self.now = time;
        Some((time, payload))
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.queue.keys().next().map(|&(time, _)| time)
    }
}

fn run_differential(seed: u64, steps: usize) {
    let mut rng = SimRng::seed_from(seed);
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut model = Reference::default();
    // Ids issued by each side, aligned by index. `fired[i]` marks ids whose
    // event already popped or cancelled — kept so we can replay cancels on
    // dead ids (they must report false on both sides).
    let mut ids: Vec<(EventId, u64)> = Vec::new();
    let mut payload = 0u64;

    for _ in 0..steps {
        match rng.next_below(10) {
            // Schedule dominates so queues grow enough to stress the heap.
            0..=4 => {
                let dt = rng.next_below(1_000_000);
                let time = SimTime::from_nanos(model.now.as_nanos() + dt);
                payload += 1;
                let id = q.schedule(time, payload);
                let seq = model.schedule(time, payload);
                ids.push((id, seq));
            }
            5..=6 => {
                // Cancel a random id — live, fired, or already cancelled.
                if let Some(&(id, seq)) = rng.pick(&ids) {
                    assert_eq!(q.cancel(id), model.cancel(seq), "cancel verdict diverged");
                    // Duplicate cancel must be false on both sides.
                    assert!(!q.cancel(id));
                    assert!(!model.cancel(seq));
                }
            }
            7..=8 => {
                assert_eq!(q.pop(), model.pop(), "pop diverged");
            }
            _ => {
                assert_eq!(q.peek_time(), model.peek_time(), "peek diverged");
                assert_eq!(q.len(), model.queue.len(), "len diverged");
                assert_eq!(q.is_empty(), model.queue.is_empty());
            }
        }
    }
    // Drain both: every remaining event must come out in the same order.
    loop {
        let (a, b) = (q.pop(), model.pop());
        assert_eq!(a, b, "drain diverged");
        if a.is_none() {
            break;
        }
    }
}

#[test]
fn differential_vs_btreemap_reference() {
    for seed in 0..32 {
        run_differential(0xFAA5_F10F ^ seed, 4_000);
    }
}

/// Heavy cancel-after-fire pressure: fire everything, then cancel stale
/// ids while new events recycle the freed slots.
#[test]
fn cancel_after_fire_with_slot_recycling() {
    let mut rng = SimRng::seed_from(42);
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut model = Reference::default();
    let mut stale: Vec<(EventId, u64)> = Vec::new();
    for round in 0..50 {
        let mut live = Vec::new();
        for i in 0..20 {
            let t = SimTime::from_nanos(model.now.as_nanos() + 1 + rng.next_below(1000));
            let id = q.schedule(t, round * 100 + i);
            let seq = model.schedule(t, round * 100 + i);
            live.push((id, seq));
        }
        // Fire roughly half, making their ids stale.
        for _ in 0..10 {
            assert_eq!(q.pop(), model.pop());
        }
        // Stale ids from earlier rounds point at recycled slots now; they
        // must never cancel the new occupants.
        for &(id, seq) in &stale {
            assert_eq!(q.cancel(id), model.cancel(seq));
        }
        stale.extend(live);
    }
    loop {
        let (a, b) = (q.pop(), model.pop());
        assert_eq!(a, b);
        if a.is_none() {
            break;
        }
    }
}
