//! The four Pegasus scientific workflows (Table 1), "generated from Pegasus
//! workflow executions [...] all configured with 50 function nodes" (§2.1).
//!
//! The real Pegasus instances carry proprietary input archives; these
//! generators reproduce the published DAG shapes and size the edge payloads
//! so the per-invocation data volumes land on Figure 5 / Table 4
//! magnitudes:
//!
//! * **Cycles** — many independent deep chains with heavy intermediate
//!   files (~1.1 GB/invocation); the chains localise almost entirely, which
//!   is why the paper reports a 95 % transmission reduction.
//! * **Epigenomics** — classic split → per-lane map pipelines → merge,
//!   light payloads (fastq chunks).
//! * **Genome** (1000-genome) — a wide *individuals* stage whose merged
//!   output is fanned out to a wide *analysis* stage; the single hot object
//!   is consumed everywhere, so only a modest fraction localises (24 % in
//!   Table 4). Size-parameterisable for the Figure 16 sweep.
//! * **SoyKB** — every alignment task re-reads the shared reference
//!   bundle, a single object with 30 consumers that can never co-locate
//!   within one worker's capacity — the worst case for FaaStore (5.2 % in
//!   Table 4).

use faasflow_wdl::{DagSpec, FunctionProfile, Workflow};

fn profile(exec_ms: u64, out: u64) -> FunctionProfile {
    FunctionProfile::with_millis(exec_ms, out)
        .peak_mem(96 << 20)
        .exec_variation(0.03)
}

/// Pegasus **Cycles**: `prepare` → 12 chains of 4 heavy stages → `combine`.
/// 50 function nodes, ~1.1 GB data per invocation.
pub fn cycles() -> Workflow {
    const CHAINS: usize = 12;
    const CHAIN_EDGE: u64 = 26 << 20; // heavy intermediate crop-model state
    let mut spec = DagSpec::new();
    spec.task("prepare", profile(300, 2 << 20));
    let stages = ["land_units", "cycles", "fertilizer", "parser"];
    for c in 0..CHAINS {
        for (s, stage) in stages.iter().enumerate() {
            let out = if s + 1 == stages.len() {
                8 << 20 // summary shipped to combine
            } else {
                CHAIN_EDGE
            };
            spec.task(format!("{stage}_{c}"), profile(250, out));
        }
        spec.edge("prepare", format!("land_units_{c}"));
        for s in 1..stages.len() {
            spec.edge(
                format!("{}_{c}", stages[s - 1]),
                format!("{}_{c}", stages[s]),
            );
        }
    }
    spec.task("combine", profile(400, 0));
    for c in 0..CHAINS {
        spec.edge(format!("parser_{c}"), "combine");
    }
    Workflow::dag("Cyc", spec)
}

/// Pegasus **Epigenomics**: `split` → 9 five-stage map pipelines → merge →
/// index → pileup. 50 function nodes, tens of MB per invocation.
pub fn epigenomics() -> Workflow {
    const LANES: usize = 9;
    let mut spec = DagSpec::new();
    spec.task("fastq_split", profile(200, 256 << 10));
    let stages = ["filter", "sol2sanger", "fastq2bfq", "map", "map_index"];
    for lane in 0..LANES {
        for (s, stage) in stages.iter().enumerate() {
            let out = if s + 1 == stages.len() {
                256 << 10 // aligned reads toward the merge
            } else {
                1 << 20 // the heavy per-lane fastq/bfq intermediates
            };
            spec.task(format!("{stage}_{lane}"), profile(150, out));
        }
        spec.edge("fastq_split", format!("filter_{lane}"));
        for s in 1..stages.len() {
            spec.edge(
                format!("{}_{lane}", stages[s - 1]),
                format!("{}_{lane}", stages[s]),
            );
        }
    }
    spec.task("map_merge", profile(300, 1 << 20));
    for lane in 0..LANES {
        spec.edge(format!("map_index_{lane}"), "map_merge");
    }
    spec.task("maq_index", profile(200, 512 << 10));
    spec.edge("map_merge", "maq_index");
    spec.task("pileup", profile(250, 0));
    spec.edge("maq_index", "pileup");
    // 1 + 45 + 3 = 49; add the chromosome selector the real instance has.
    spec.task("chr_select", profile(100, 512 << 10));
    // chr_select feeds the split stage's lanes? In the Pegasus instance it
    // precedes the split; wire it as the root.
    spec.edge("chr_select", "fastq_split");
    Workflow::dag("Epi", spec)
}

/// Pegasus **1000-Genome** with a configurable function-node count
/// (Figure 16 sweeps 10–200). Shape: `individuals` wide stage → `merge` →
/// wide `analysis` stage (mutation overlap / frequency) → `collect`.
///
/// # Panics
///
/// Panics if `nodes < 6` (the shape needs at least one node per stage).
pub fn genome(nodes: usize) -> Workflow {
    assert!(nodes >= 6, "genome needs at least 6 function nodes");
    // Fixed nodes: merge, sifting, collect. Remaining split ~60/40 between
    // the individuals and analysis stages.
    let remaining = nodes - 3;
    let individuals = (remaining * 3).div_ceil(5).max(1);
    let analysis = (remaining - individuals).max(1);
    let mut spec = DagSpec::new();
    for i in 0..individuals {
        spec.task(format!("individuals_{i}"), profile(350, 3 << 19));
    }
    spec.task("individuals_merge", profile(500, 1 << 20));
    for i in 0..individuals {
        spec.edge(format!("individuals_{i}"), "individuals_merge");
    }
    spec.task("sifting", profile(300, 512 << 10));
    spec.edge("individuals_merge", "sifting");
    for a in 0..analysis {
        let name = if a % 2 == 0 {
            format!("mutation_overlap_{a}")
        } else {
            format!("frequency_{a}")
        };
        spec.task(&name, profile(400, 512 << 10));
        // Every analysis task reads the merged panel and the sifted calls —
        // the hot shared objects that resist localisation.
        spec.edge("individuals_merge", &name);
        spec.edge("sifting", &name);
    }
    spec.task("collect", profile(300, 0));
    for a in 0..analysis {
        let name = if a % 2 == 0 {
            format!("mutation_overlap_{a}")
        } else {
            format!("frequency_{a}")
        };
        spec.edge(&name, "collect");
    }
    Workflow::dag("Gen", spec)
}

/// Pegasus **SoyKB**: the reference bundle produced by `ref_prepare` is
/// read by all 30 alignment tasks — a single hot object whose consumer set
/// can never fit one worker, so it always ships remotely (Table 4 reports
/// only a 5.2 % reduction). 50 function nodes.
pub fn soykb() -> Workflow {
    const PRODUCERS: usize = 30;
    const CONSUMERS: usize = 18;
    let mut spec = DagSpec::new();
    spec.task("ref_prepare", profile(250, 1 << 20));
    for p in 0..PRODUCERS {
        spec.task(format!("align_{p}"), profile(300, 128 << 10));
        spec.edge("ref_prepare", format!("align_{p}"));
    }
    for c in 0..CONSUMERS {
        let name = format!("haplotype_{c}");
        spec.task(&name, profile(350, 64 << 10));
        // Stride the reads so consumer c touches producers spread across
        // the whole layer (no clean bipartite clustering exists), and each
        // producer feeds several consumers — all of which would have to be
        // co-located for FaaStore to localise its output.
        for k in 0..4 {
            let p = (c * 5 + k * 7) % PRODUCERS;
            spec.edge(format!("align_{p}"), &name);
        }
    }
    spec.task("genotype_merge", profile(400, 0));
    for c in 0..CONSUMERS {
        spec.edge(format!("haplotype_{c}"), "genotype_merge");
    }
    Workflow::dag("Soy", spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasflow_wdl::DagParser;

    #[test]
    fn default_sizes_are_fifty() {
        for wf in [cycles(), epigenomics(), genome(50), soykb()] {
            let dag = DagParser::default().parse(&wf).expect("parses");
            assert_eq!(dag.function_count(), 50, "{}", wf.name);
        }
    }

    #[test]
    fn genome_scales_to_requested_size() {
        for n in [10usize, 25, 50, 100, 200] {
            let wf = genome(n);
            let dag = DagParser::default().parse(&wf).expect("parses");
            assert_eq!(dag.function_count(), n, "genome({n})");
        }
    }

    #[test]
    #[should_panic(expected = "at least 6")]
    fn genome_rejects_tiny_sizes() {
        let _ = genome(3);
    }

    #[test]
    fn cycles_data_dominated_by_chains() {
        let dag = DagParser::default().parse(&cycles()).expect("parses");
        // Chain-internal edges are point-to-point (one consumer) and heavy;
        // they are the localisable mass.
        let chain_bytes: u64 = dag
            .data_edges()
            .iter()
            .filter(|d| d.bytes >= (20 << 20))
            .map(|d| d.bytes)
            .sum();
        let total = dag.total_data_bytes();
        assert!(
            chain_bytes as f64 / total as f64 > 0.75,
            "chains carry {chain_bytes} of {total}"
        );
    }

    #[test]
    fn genome_hot_objects_have_many_consumers() {
        let dag = DagParser::default().parse(&genome(50)).expect("parses");
        let merge = dag
            .nodes()
            .iter()
            .find(|n| n.name == "individuals_merge")
            .expect("merge exists")
            .id;
        let consumers = dag.data_outputs(merge).count();
        assert!(consumers > 10, "merged panel read by {consumers} tasks");
    }

    #[test]
    fn soykb_consumers_read_multiple_producers() {
        let dag = DagParser::default().parse(&soykb()).expect("parses");
        let h0 = dag
            .nodes()
            .iter()
            .find(|n| n.name == "haplotype_0")
            .expect("haplotype exists")
            .id;
        assert_eq!(dag.data_inputs(h0).count(), 4);
    }
}
