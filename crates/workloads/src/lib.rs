//! # faasflow-workloads
//!
//! The eight evaluation benchmarks of the FaaSFlow paper (Table 1):
//!
//! * **Scientific workflows** (Pegasus instances, 50 function nodes each):
//!   Cycles, Epigenomics, Genome, SoyKB. Genome is size-parameterisable
//!   ([`scientific::genome`]) for the Figure 16 scalability sweep.
//! * **Real-world applications**: Video-FFmpeg (Alibaba Function Compute),
//!   Illegal Recognizer (Google Cloud Functions), File Processing
//!   (AWS Lambda), Word Count.
//!
//! The paper's traces and payloads are not redistributable; each generator
//! reproduces the *shape* that drives the evaluation — DAG topology, stage
//! durations, and edge data volumes calibrated to Figure 5 and Table 4
//! magnitudes (see DESIGN.md for the calibration notes).
//!
//! [`without_data`] produces the §2.3 configuration ("all required input
//! data for functions is prepared and packed in the container image"): the
//! same DAG with zero-byte edges, used by the scheduling-overhead
//! experiments (Figures 4 and 11).
//!
//! ```
//! use faasflow_workloads::Benchmark;
//!
//! for b in Benchmark::ALL {
//!     let wf = b.workflow();
//!     // Scientific workflows are configured with 50 function nodes (§2.1).
//!     if Benchmark::SCIENTIFIC.contains(&b) {
//!         assert_eq!(b.function_count(), 50);
//!     }
//!     assert_eq!(wf.name, b.short_name());
//! }
//! ```

pub mod generators;
pub mod realworld;
pub mod scientific;
pub mod transform;

pub use transform::{deterministic_exec, without_data};

use faasflow_wdl::Workflow;

/// One of the paper's eight benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// Pegasus Cycles (agro-ecosystem simulation): deep heavy-data chains.
    Cycles,
    /// Pegasus Epigenomics: fan-out of map pipelines, light data.
    Epigenomics,
    /// Pegasus 1000-Genome: wide individuals stage feeding wide analysis.
    Genome,
    /// Pegasus SoyKB: cross-coupled alignment stages.
    SoyKb,
    /// FFmpeg audio/video transcoding (Alibaba Function Compute use case).
    VideoFfmpeg,
    /// OCR → translate → detect → blur (Google Cloud Functions tutorial).
    IllegalRecognizer,
    /// Real-time file processing (AWS Lambda reference architecture).
    FileProcessing,
    /// Classic map/reduce word count (Zhang et al.).
    WordCount,
}

impl Benchmark {
    /// All eight, in the paper's order.
    pub const ALL: [Benchmark; 8] = [
        Benchmark::Cycles,
        Benchmark::Epigenomics,
        Benchmark::Genome,
        Benchmark::SoyKb,
        Benchmark::VideoFfmpeg,
        Benchmark::IllegalRecognizer,
        Benchmark::FileProcessing,
        Benchmark::WordCount,
    ];

    /// The four Pegasus scientific workflows.
    pub const SCIENTIFIC: [Benchmark; 4] = [
        Benchmark::Cycles,
        Benchmark::Epigenomics,
        Benchmark::Genome,
        Benchmark::SoyKb,
    ];

    /// The four real-world applications.
    pub const REAL_WORLD: [Benchmark; 4] = [
        Benchmark::VideoFfmpeg,
        Benchmark::IllegalRecognizer,
        Benchmark::FileProcessing,
        Benchmark::WordCount,
    ];

    /// The paper's abbreviation (Cyc, Epi, Gen, Soy, Vid, IR, FP, WC).
    pub fn short_name(self) -> &'static str {
        match self {
            Benchmark::Cycles => "Cyc",
            Benchmark::Epigenomics => "Epi",
            Benchmark::Genome => "Gen",
            Benchmark::SoyKb => "Soy",
            Benchmark::VideoFfmpeg => "Vid",
            Benchmark::IllegalRecognizer => "IR",
            Benchmark::FileProcessing => "FP",
            Benchmark::WordCount => "WC",
        }
    }

    /// Full display name.
    pub fn full_name(self) -> &'static str {
        match self {
            Benchmark::Cycles => "Cycles",
            Benchmark::Epigenomics => "Epigenomics",
            Benchmark::Genome => "Genome",
            Benchmark::SoyKb => "SoyKB",
            Benchmark::VideoFfmpeg => "Video-FFmpeg",
            Benchmark::IllegalRecognizer => "Illegal Recognizer",
            Benchmark::FileProcessing => "File Processing",
            Benchmark::WordCount => "Word Count",
        }
    }

    /// The workflow definition at the paper's default size.
    pub fn workflow(self) -> Workflow {
        match self {
            Benchmark::Cycles => scientific::cycles(),
            Benchmark::Epigenomics => scientific::epigenomics(),
            Benchmark::Genome => scientific::genome(50),
            Benchmark::SoyKb => scientific::soykb(),
            Benchmark::VideoFfmpeg => realworld::video_ffmpeg(),
            Benchmark::IllegalRecognizer => realworld::illegal_recognizer(),
            Benchmark::FileProcessing => realworld::file_processing(),
            Benchmark::WordCount => realworld::word_count(),
        }
    }

    /// Function-node count of the default workflow.
    pub fn function_count(self) -> usize {
        match &self.workflow().spec {
            faasflow_wdl::WorkflowSpec::Steps(s) => s.function_count(),
            faasflow_wdl::WorkflowSpec::Dag(d) => d.tasks.len(),
        }
    }

    /// Data moved when the application runs as a monolith (direct
    /// inter-calls, no store) — Figure 5's baseline bars. The paper states
    /// Vid = 4.23 MB and Cyc = 23.95 MB; the rest are sized from the same
    /// input/output reasoning.
    pub fn monolithic_bytes(self) -> u64 {
        match self {
            Benchmark::Cycles => (23.95 * 1048576.0) as u64,
            Benchmark::Epigenomics => 2 << 20,
            Benchmark::Genome => 40 << 20,
            Benchmark::SoyKb => 8 << 20,
            Benchmark::VideoFfmpeg => (4.23 * 1048576.0) as u64,
            Benchmark::IllegalRecognizer => 3 << 20,
            Benchmark::FileProcessing => 4 << 20,
            Benchmark::WordCount => 3 << 20,
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasflow_wdl::DagParser;

    #[test]
    fn every_benchmark_parses() {
        for b in Benchmark::ALL {
            let wf = b.workflow();
            let dag = DagParser::default()
                .parse(&wf)
                .unwrap_or_else(|e| panic!("{b} failed to parse: {e}"));
            assert!(dag.function_count() > 0);
            assert!(!dag.entry_nodes().is_empty());
            assert!(!dag.exit_nodes().is_empty());
        }
    }

    #[test]
    fn scientific_workflows_have_fifty_functions() {
        for b in Benchmark::SCIENTIFIC {
            assert_eq!(b.function_count(), 50, "{b} must have 50 function nodes");
        }
    }

    #[test]
    fn real_world_apps_are_small() {
        for b in Benchmark::REAL_WORLD {
            let n = b.function_count();
            assert!(
                (3..=12).contains(&n),
                "{b} has {n} functions; the paper's apps have ~10 or fewer"
            );
        }
    }

    #[test]
    fn faas_data_movement_dwarfs_monolithic() {
        // Figure 5: Cyc and Vid require 39.46x / 22.86x more movement
        // under FaaS than as monoliths.
        for b in [Benchmark::Cycles, Benchmark::VideoFfmpeg] {
            let dag = DagParser::default().parse(&b.workflow()).unwrap();
            let faas = dag.total_data_bytes();
            let mono = b.monolithic_bytes();
            let ratio = faas as f64 / mono as f64;
            assert!(
                ratio > 10.0,
                "{b}: FaaS/monolithic ratio {ratio:.1} too small"
            );
        }
    }

    #[test]
    fn cyc_data_volume_matches_figure_5() {
        let dag = DagParser::default()
            .parse(&Benchmark::Cycles.workflow())
            .unwrap();
        let mb = dag.total_data_bytes() as f64 / 1048576.0;
        assert!(
            (900.0..1400.0).contains(&mb),
            "Cyc moves {mb:.0} MB; Figure 5 reports 1182.3 MB"
        );
    }

    #[test]
    fn vid_data_volume_matches_figure_5() {
        let dag = DagParser::default()
            .parse(&Benchmark::VideoFfmpeg.workflow())
            .unwrap();
        let mb = dag.total_data_bytes() as f64 / 1048576.0;
        assert!(
            (80.0..115.0).contains(&mb),
            "Vid moves {mb:.0} MB; Figure 5 reports 96.82 MB"
        );
    }

    #[test]
    fn short_names_match_the_paper() {
        let names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.short_name()).collect();
        assert_eq!(names, ["Cyc", "Epi", "Gen", "Soy", "Vid", "IR", "FP", "WC"]);
    }
}
