//! Parameterizable workflow-topology generators.
//!
//! The fixed benchmarks of [`crate::scientific`] pin the paper's 50-node
//! configurations; these generators expose the same three topology
//! families with free parameters, for scalability studies beyond Figure 16
//! (which only scales Genome) and for stress-testing the scheduler:
//!
//! * [`chain_ensemble`] — Cycles-like: many independent deep chains between
//!   a fan-out source and a fan-in sink. Localises almost fully.
//! * [`map_pipeline`] — Epigenomics-like: split → per-lane pipelines →
//!   merge chain. Localises per lane.
//! * [`cross_coupled`] — SoyKB-like: a bipartite producer/consumer layer
//!   where every consumer reads several strided producers. Resists
//!   localisation.
//!
//! All generators are deterministic in their parameters.

use faasflow_wdl::{DagSpec, FunctionProfile, Workflow};

/// Parameters shared by the generators.
#[derive(Debug, Clone, Copy)]
pub struct StageProfile {
    /// Mean execution time per stage, milliseconds.
    pub exec_ms: u64,
    /// Output bytes per producing stage.
    pub output_bytes: u64,
}

impl Default for StageProfile {
    fn default() -> Self {
        StageProfile {
            exec_ms: 200,
            output_bytes: 4 << 20,
        }
    }
}

fn profile(p: StageProfile) -> FunctionProfile {
    FunctionProfile::with_millis(p.exec_ms, p.output_bytes)
        .peak_mem(96 << 20)
        .exec_variation(0.03)
}

/// Cycles-like: `prepare` → `chains` independent chains of `chain_len`
/// stages → `combine`. Function count = `chains * chain_len + 2`.
///
/// # Panics
///
/// Panics if `chains` or `chain_len` is zero.
pub fn chain_ensemble(
    name: &str,
    chains: usize,
    chain_len: usize,
    stage: StageProfile,
) -> Workflow {
    assert!(chains > 0 && chain_len > 0, "ensemble must be non-empty");
    let mut spec = DagSpec::new();
    spec.task(
        "prepare",
        profile(StageProfile {
            output_bytes: 1 << 20,
            ..stage
        }),
    );
    for c in 0..chains {
        for s in 0..chain_len {
            spec.task(format!("s{s}_c{c}"), profile(stage));
            if s == 0 {
                spec.edge("prepare", format!("s0_c{c}"));
            } else {
                spec.edge(format!("s{}_c{c}", s - 1), format!("s{s}_c{c}"));
            }
        }
        spec.edge(format!("s{}_c{c}", chain_len - 1), "combine");
    }
    spec.task(
        "combine",
        profile(StageProfile {
            output_bytes: 0,
            ..stage
        }),
    );
    Workflow::dag(name, spec)
}

/// Epigenomics-like: `split` → `lanes` pipelines of `lane_len` stages →
/// `merge`. Function count = `lanes * lane_len + 2`.
///
/// # Panics
///
/// Panics if `lanes` or `lane_len` is zero.
pub fn map_pipeline(name: &str, lanes: usize, lane_len: usize, stage: StageProfile) -> Workflow {
    assert!(lanes > 0 && lane_len > 0, "pipeline must be non-empty");
    let mut spec = DagSpec::new();
    spec.task(
        "split",
        profile(StageProfile {
            output_bytes: stage.output_bytes / 4,
            ..stage
        }),
    );
    for l in 0..lanes {
        for s in 0..lane_len {
            spec.task(format!("p{s}_l{l}"), profile(stage));
            if s == 0 {
                spec.edge("split", format!("p0_l{l}"));
            } else {
                spec.edge(format!("p{}_l{l}", s - 1), format!("p{s}_l{l}"));
            }
        }
        spec.edge(format!("p{}_l{l}", lane_len - 1), "merge");
    }
    spec.task(
        "merge",
        profile(StageProfile {
            output_bytes: 0,
            ..stage
        }),
    );
    Workflow::dag(name, spec)
}

/// SoyKB-like: `producers` tasks each read by `reads_per_consumer` of the
/// `consumers` tasks (strided), plus a shared source and a sink.
/// Function count = `producers + consumers + 2`.
///
/// # Panics
///
/// Panics if any count is zero or `reads_per_consumer > producers`.
pub fn cross_coupled(
    name: &str,
    producers: usize,
    consumers: usize,
    reads_per_consumer: usize,
    stage: StageProfile,
) -> Workflow {
    assert!(
        producers > 0 && consumers > 0 && reads_per_consumer > 0,
        "layers must be non-empty"
    );
    assert!(
        reads_per_consumer <= producers,
        "cannot read more producers than exist"
    );
    let mut spec = DagSpec::new();
    spec.task("source", profile(stage));
    for p in 0..producers {
        spec.task(format!("prod_{p}"), profile(stage));
        spec.edge("source", format!("prod_{p}"));
    }
    for c in 0..consumers {
        let consumer = format!("cons_{c}");
        spec.task(&consumer, profile(stage));
        for k in 0..reads_per_consumer {
            // Coprime-ish stride mixes the bipartite wiring.
            let p = (c * 5 + k * 7 + k) % producers;
            // Avoid duplicate edges for small producer counts.
            let target = format!("prod_{p}");
            if !spec.edges.contains(&(target.clone(), consumer.clone())) {
                spec.edge(target, &consumer);
            }
        }
        spec.edge(&consumer, "sink");
    }
    spec.task(
        "sink",
        profile(StageProfile {
            output_bytes: 0,
            ..stage
        }),
    );
    Workflow::dag(name, spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasflow_wdl::DagParser;

    fn count(wf: &Workflow) -> usize {
        DagParser::default()
            .parse(wf)
            .expect("generator output parses")
            .function_count()
    }

    #[test]
    fn chain_ensemble_counts() {
        for (chains, len) in [(1, 1), (4, 3), (12, 4), (30, 10)] {
            let wf = chain_ensemble("ce", chains, len, StageProfile::default());
            assert_eq!(count(&wf), chains * len + 2, "{chains}x{len}");
        }
    }

    #[test]
    fn map_pipeline_counts() {
        for (lanes, len) in [(1, 1), (9, 5), (20, 8)] {
            let wf = map_pipeline("mp", lanes, len, StageProfile::default());
            assert_eq!(count(&wf), lanes * len + 2, "{lanes}x{len}");
        }
    }

    #[test]
    fn cross_coupled_counts_and_reads() {
        let wf = cross_coupled("cc", 30, 18, 4, StageProfile::default());
        let dag = DagParser::default().parse(&wf).expect("parses");
        assert_eq!(dag.function_count(), 50);
        // Each consumer reads up to 4 distinct producers plus nothing else.
        for node in dag.nodes() {
            if node.name.starts_with("cons_") {
                let inputs = dag.data_inputs(node.id).count();
                assert!((1..=4).contains(&inputs), "{}: {inputs}", node.name);
            }
        }
    }

    #[test]
    fn generators_scale_through_the_parser() {
        // A 300-node ensemble still parses and has a sane critical path.
        let wf = chain_ensemble("big", 30, 10, StageProfile::default());
        let dag = DagParser::default().parse(&wf).expect("parses");
        let (nodes, _) = dag.critical_path();
        assert_eq!(nodes.len(), 12, "prepare + 10 chain stages + combine");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_chains_panics() {
        let _ = chain_ensemble("bad", 0, 3, StageProfile::default());
    }

    #[test]
    #[should_panic(expected = "more producers")]
    fn over_reading_panics() {
        let _ = cross_coupled("bad", 3, 5, 4, StageProfile::default());
    }
}
