//! The four real-world applications (Table 1), reimplemented from their
//! published sources' structure:
//!
//! * **Video-FFmpeg** — Alibaba Function Compute's audio/video use case:
//!   "Function calls FFmpeg to parallelly transcode the video uploaded and
//!   return it" — a split → foreach-transcode → merge pipeline.
//! * **Illegal Recognizer** — the Google Cloud Functions OCR + Translation
//!   + image-blur tutorial composite.
//! * **File Processing** — the AWS Lambda real-time file processing
//!   reference: "delivers notes from the database and then converts to
//!   HTML and detects sentiment in parallel".
//! * **Word Count** — the classic map/reduce, "implemented with reference
//!   to Zhang et al.".

use faasflow_wdl::{FunctionProfile, Step, Workflow};

fn profile(exec_ms: u64, out: u64) -> FunctionProfile {
    FunctionProfile::with_millis(exec_ms, out)
        .peak_mem(96 << 20)
        .exec_variation(0.03)
}

/// Sets the peak memory so that Eq. (1) reclaims exactly `slack` bytes per
/// container (with the default 256 MB provisioning and 32 MB reserve μ).
fn with_slack(p: FunctionProfile, slack: u64) -> FunctionProfile {
    p.peak_mem((256 << 20) - (32 << 20) - slack)
}

/// **Video-FFmpeg (Vid)**: probe → split → parallel transcode (foreach) →
/// merge → upload. ~97 MB moved per invocation (Figure 5: 96.82 MB).
pub fn video_ffmpeg() -> Workflow {
    // FFmpeg keeps most of the container budget busy (decode buffers), so
    // Eq. (1) leaves ~7 MB of reclaimable slack per container; the quota
    // covers the split output and the merged result but not the transcoded
    // chunks, reproducing Table 4's partial (74 %) localisation.
    let mem = |p: FunctionProfile| with_slack(p, 7 << 20);
    Workflow::steps(
        "Vid",
        Step::sequence(vec![
            Step::task("probe", mem(profile(120, 512 << 10))),
            Step::task("split", mem(profile(600, 48 << 20))),
            Step::foreach("transcode", mem(profile(1500, 32 << 20)), 6),
            Step::task("merge", mem(profile(800, 12 << 20))),
            Step::task("upload", mem(profile(250, 0))),
        ]),
    )
}

/// **Illegal Recognizer (IR)**: extract text (OCR) → translate → detect
/// offensive content → blur. Small payloads (images and text snippets).
pub fn illegal_recognizer() -> Workflow {
    // Image buffers keep the containers nearly full; ~0.7 MB of slack per
    // container is reclaimable, so the light text edges localise while the
    // heavy OCR output ships remotely (~35 % in Table 4).
    let mem = |p: FunctionProfile| with_slack(p, 717 << 10);
    Workflow::steps(
        "IR",
        Step::sequence(vec![
            Step::task("extract_text", mem(profile(450, 3 << 20))),
            Step::task("translate", mem(profile(300, 1 << 20))),
            Step::task("detect_offensive", mem(profile(500, 1 << 20))),
            Step::task("blur_image", mem(profile(650, 0))),
        ]),
    )
}

/// **File Processing (FP)**: deliver note → parallel {convert to HTML,
/// detect sentiment} → persist results.
pub fn file_processing() -> Workflow {
    // ~2.8 MB reclaimable slack per container: the note itself localises,
    // the converted artifacts ship remotely (~62 % reduction in Table 4).
    let mem = |p: FunctionProfile| with_slack(p, (2 << 20) + (820 << 10));
    Workflow::steps(
        "FP",
        Step::sequence(vec![
            Step::task("deliver_note", mem(profile(120, 8 << 20))),
            Step::parallel(vec![
                Step::task("convert_html", mem(profile(280, 4 << 20))),
                Step::task("detect_sentiment", mem(profile(420, 1 << 20))),
            ]),
            Step::task("persist", mem(profile(160, 0))),
        ]),
    )
}

/// **Word Count (WC)**: split the corpus → parallel counting (foreach) →
/// merge the partial counts.
pub fn word_count() -> Workflow {
    // Quota admits the corpus chunks but not the partial counts (~70 %).
    let mem = |p: FunctionProfile| with_slack(p, (1 << 20) + (410 << 10));
    Workflow::steps(
        "WC",
        Step::sequence(vec![
            Step::task("split_corpus", mem(profile(220, 12 << 20))),
            Step::foreach("count", mem(profile(320, 4 << 20)), 8),
            Step::task("merge_counts", mem(profile(260, 0))),
        ]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasflow_wdl::DagParser;

    #[test]
    fn vid_has_a_foreach_transcode() {
        let dag = DagParser::default().parse(&video_ffmpeg()).expect("parses");
        let transcode = dag
            .nodes()
            .iter()
            .find(|n| n.name == "transcode")
            .expect("transcode exists");
        assert_eq!(transcode.parallelism, 6);
    }

    #[test]
    fn fp_runs_html_and_sentiment_in_parallel() {
        let dag = DagParser::default()
            .parse(&file_processing())
            .expect("parses");
        let html = dag
            .nodes()
            .iter()
            .find(|n| n.name == "convert_html")
            .unwrap();
        let sent = dag
            .nodes()
            .iter()
            .find(|n| n.name == "detect_sentiment")
            .unwrap();
        // Neither is an ancestor of the other: both read the note directly.
        let html_inputs: Vec<_> = dag.data_inputs(html.id).map(|d| d.producer).collect();
        let sent_inputs: Vec<_> = dag.data_inputs(sent.id).map(|d| d.producer).collect();
        assert_eq!(html_inputs, sent_inputs);
    }

    #[test]
    fn ir_is_a_simple_sequence() {
        let dag = DagParser::default()
            .parse(&illegal_recognizer())
            .expect("parses");
        assert_eq!(dag.node_count(), 4, "no virtual nodes in a pure sequence");
        assert_eq!(dag.entry_nodes().len(), 1);
        assert_eq!(dag.exit_nodes().len(), 1);
    }

    #[test]
    fn wc_data_volume_is_tens_of_megabytes() {
        let dag = DagParser::default().parse(&word_count()).expect("parses");
        let mb = dag.total_data_bytes() as f64 / 1048576.0;
        assert!((10.0..50.0).contains(&mb), "WC moves {mb:.1} MB");
    }
}
