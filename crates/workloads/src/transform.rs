//! Workflow transforms used by specific experiment configurations.

use faasflow_wdl::{Step, Workflow, WorkflowSpec};

/// The §2.3 configuration: "all required input data for functions is
/// prepared and packed in the container image" — the same workflow with
/// every output size zeroed, so no data ever moves between functions.
/// Figures 4 and 11 (scheduling overhead) run this variant.
pub fn without_data(workflow: &Workflow) -> Workflow {
    let mut wf = workflow.clone();
    match &mut wf.spec {
        WorkflowSpec::Steps(root) => zero_step(root),
        WorkflowSpec::Dag(spec) => {
            for task in &mut spec.tasks {
                task.profile.output_bytes = 0;
            }
        }
    }
    wf
}

fn zero_step(step: &mut Step) {
    match step {
        Step::Task { profile, .. } | Step::Foreach { profile, .. } => {
            profile.output_bytes = 0;
        }
        Step::Sequence { steps } => steps.iter_mut().for_each(zero_step),
        Step::Parallel { branches } => branches.iter_mut().for_each(zero_step),
        Step::Switch { cases } => cases.iter_mut().for_each(|c| zero_step(&mut c.step)),
    }
}

/// The same workflow with every execution-time coefficient of variation
/// zeroed: realized execution equals the profile mean on every attempt.
/// The critical-path experiment runs this variant so the observed exec
/// total provably dominates the DAG's static `critical_path_exec()` bound
/// (with variation, a lucky short run could dip below the mean-based
/// bound).
pub fn deterministic_exec(workflow: &Workflow) -> Workflow {
    let mut wf = workflow.clone();
    match &mut wf.spec {
        WorkflowSpec::Steps(root) => fix_step(root),
        WorkflowSpec::Dag(spec) => {
            for task in &mut spec.tasks {
                task.profile.exec_cv = 0.0;
            }
        }
    }
    wf
}

fn fix_step(step: &mut Step) {
    match step {
        Step::Task { profile, .. } | Step::Foreach { profile, .. } => {
            profile.exec_cv = 0.0;
        }
        Step::Sequence { steps } => steps.iter_mut().for_each(fix_step),
        Step::Parallel { branches } => branches.iter_mut().for_each(fix_step),
        Step::Switch { cases } => cases.iter_mut().for_each(|c| fix_step(&mut c.step)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;
    use faasflow_wdl::DagParser;

    #[test]
    fn deterministic_exec_zeroes_every_cv() {
        for b in Benchmark::ALL {
            let wf = deterministic_exec(&b.workflow());
            let dag = DagParser::default().parse(&wf).expect("still valid");
            for node in dag.nodes() {
                if let Some(p) = node.kind.profile() {
                    assert_eq!(p.exec_cv, 0.0, "{b} node {} keeps cv", node.id);
                }
            }
            // Structure and means are untouched.
            let original = DagParser::default().parse(&b.workflow()).expect("parses");
            assert_eq!(dag.node_count(), original.node_count());
            assert_eq!(dag.critical_path_exec(), original.critical_path_exec());
        }
    }

    #[test]
    fn zeroes_every_edge_of_every_benchmark() {
        for b in Benchmark::ALL {
            let wf = without_data(&b.workflow());
            let dag = DagParser::default().parse(&wf).expect("still valid");
            assert_eq!(dag.total_data_bytes(), 0, "{b} still moves data");
            // Structure is untouched.
            let original = DagParser::default().parse(&b.workflow()).expect("parses");
            assert_eq!(dag.node_count(), original.node_count());
            assert_eq!(dag.edges().len(), original.edges().len());
        }
    }
}
