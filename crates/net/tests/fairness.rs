//! Property tests: max-min fairness invariants of the flow network.

use faasflow_net::{FlowNet, NicSpec};
use faasflow_sim::{NodeId, SimTime};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Spec {
    caps: Vec<f64>,
    flows: Vec<(usize, usize, u64)>,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    (2usize..6).prop_flat_map(|n| {
        let caps = proptest::collection::vec(1e6..200e6, n);
        let flows = proptest::collection::vec((0..n, 0..n, 1_000u64..100_000_000), 1..30);
        (caps, flows).prop_map(|(caps, flows)| Spec { caps, flows })
    })
}

proptest! {
    /// Rates never oversubscribe a NIC, every flow gets a positive rate,
    /// and the allocation is Pareto-maximal: each flow is capped by at
    /// least one saturated resource.
    #[test]
    fn max_min_invariants(spec in spec_strategy()) {
        let nics: Vec<NicSpec> = spec.caps.iter().map(|&c| NicSpec::symmetric(c)).collect();
        let n = nics.len();
        let mut net: FlowNet<usize> = FlowNet::new(nics);
        for (i, &(src, dst, bytes)) in spec.flows.iter().enumerate() {
            net.start_flow(NodeId::from(src), NodeId::from(dst), bytes, i, SimTime::ZERO);
        }

        let mut up = vec![0.0f64; n];
        let mut down = vec![0.0f64; n];
        let mut loopback = vec![0.0f64; n];
        let mut rates = Vec::new();
        for (_, f) in net.iter() {
            prop_assert!(f.rate() > 0.0, "every flow must receive bandwidth");
            if f.src == f.dst {
                loopback[f.src.index()] += f.rate();
            } else {
                up[f.src.index()] += f.rate();
                down[f.dst.index()] += f.rate();
            }
            rates.push((f.src, f.dst, f.rate()));
        }
        const REL: f64 = 1.0 + 1e-6;
        for i in 0..n {
            prop_assert!(up[i] <= spec.caps[i] * REL, "uplink {i} oversubscribed");
            prop_assert!(down[i] <= spec.caps[i] * REL, "downlink {i} oversubscribed");
            prop_assert!(loopback[i] <= 2e9 * REL, "loopback {i} oversubscribed");
        }
        // Pareto-maximality: every flow touches a saturated resource.
        for (src, dst, _) in rates {
            let saturated = if src == dst {
                loopback[src.index()] >= 2e9 / REL
            } else {
                up[src.index()] >= spec.caps[src.index()] / REL
                    || down[dst.index()] >= spec.caps[dst.index()] / REL
            };
            prop_assert!(saturated, "flow {src}->{dst} could be increased");
        }
    }

    /// All bytes are eventually delivered, and accounting matches.
    #[test]
    fn conservation_of_bytes(spec in spec_strategy()) {
        let nics: Vec<NicSpec> = spec.caps.iter().map(|&c| NicSpec::symmetric(c)).collect();
        let mut net: FlowNet<usize> = FlowNet::new(nics);
        for (i, &(src, dst, bytes)) in spec.flows.iter().enumerate() {
            net.start_flow(NodeId::from(src), NodeId::from(dst), bytes, i, SimTime::ZERO);
        }
        let mut delivered = 0u64;
        let mut guard = 0;
        while let Some(t) = net.next_completion() {
            for (_, flow) in net.take_completed(t) {
                delivered += flow.bytes;
            }
            guard += 1;
            prop_assert!(guard < 10_000, "completion loop must terminate");
        }
        let total: u64 = spec.flows.iter().map(|&(_, _, b)| b).sum();
        prop_assert_eq!(delivered, total);
        prop_assert_eq!(net.active_flows(), 0);
    }
}
