//! Max-min fair flow network.
//!
//! Every bulk data transfer in the cluster (remote-store reads and writes,
//! §2.4's data-shipping pattern) is a [`Flow`] from a source node to a
//! destination node. A flow consumes the source's uplink and the
//! destination's downlink; rates are assigned by **progressive filling**,
//! which yields the unique max-min fair allocation — the classic fluid model
//! of TCP fair share over a shared bottleneck (here: the storage node NIC).
//!
//! The allocation is recomputed whenever the set of flows changes or a NIC
//! capacity changes (the wondershaper experiments of §5.4). Between
//! recomputations rates are constant, so remaining bytes advance linearly
//! and the earliest completion time is exact.

use std::collections::HashMap;

use faasflow_sim::{NodeId, SimTime};
use serde::{Deserialize, Serialize};

/// Identifier of an active (or completed) flow within one [`FlowNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowId(u64);

impl std::fmt::Display for FlowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "flow{}", self.0)
    }
}

/// NIC capacities of one node, in bytes per second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NicSpec {
    /// Uplink (egress) capacity in bytes/s.
    pub uplink: f64,
    /// Downlink (ingress) capacity in bytes/s.
    pub downlink: f64,
    /// Loopback capacity for `src == dst` flows, in bytes/s. Loopback does
    /// not consume the NIC (default 2 GB/s, roughly memcpy-through-pagecache).
    pub loopback: f64,
}

impl NicSpec {
    /// A NIC with equal uplink and downlink capacity.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is negative or non-finite.
    pub fn symmetric(bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec >= 0.0,
            "NIC capacity must be finite and non-negative"
        );
        NicSpec {
            uplink: bytes_per_sec,
            downlink: bytes_per_sec,
            loopback: 2e9,
        }
    }
}

/// One bulk transfer in progress.
#[derive(Debug, Clone, PartialEq)]
pub struct Flow<T> {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Total size of the transfer in bytes.
    pub bytes: u64,
    /// Caller-supplied payload returned on completion.
    pub tag: T,
    remaining: f64,
    rate: f64,
    started: SimTime,
}

impl<T> Flow<T> {
    /// Bytes still to transfer at the last recomputation instant.
    pub fn remaining_bytes(&self) -> f64 {
        self.remaining
    }

    /// Current max-min fair rate in bytes/s.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Instant the flow was started.
    pub fn started(&self) -> SimTime {
        self.started
    }
}

// Resource index: uplink of node i -> 2i, downlink -> 2i+1, loopback -> per
// node map (rarely used, kept separate to avoid tripling the dense arrays).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Resource {
    Up(usize),
    Down(usize),
    Loop(usize),
}

/// A max-min fair flow network over a fixed set of nodes.
///
/// `T` is the caller's per-flow payload (e.g. "this transfer is the output
/// of function 12 of invocation 7"), handed back when the flow completes.
#[derive(Debug)]
pub struct FlowNet<T> {
    nics: Vec<NicSpec>,
    flows: HashMap<u64, Flow<T>>,
    next_id: u64,
    /// Instant up to which all `remaining` fields are accurate.
    updated: SimTime,
    /// Total bytes delivered, per destination node (utilisation accounting).
    delivered_to: Vec<u64>,
    /// Total bytes sent, per source node.
    sent_from: Vec<u64>,
}

impl<T> FlowNet<T> {
    /// Creates a network over `nics.len()` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nics` is empty.
    pub fn new(nics: Vec<NicSpec>) -> Self {
        assert!(!nics.is_empty(), "a flow network needs at least one node");
        let n = nics.len();
        FlowNet {
            nics,
            flows: HashMap::new(),
            next_id: 0,
            updated: SimTime::ZERO,
            delivered_to: vec![0; n],
            sent_from: vec![0; n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nics.len()
    }

    /// Number of active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Total bytes fully delivered to `node` since construction.
    pub fn bytes_delivered_to(&self, node: NodeId) -> u64 {
        self.delivered_to[node.index()]
    }

    /// Total bytes fully sent from `node` since construction.
    pub fn bytes_sent_from(&self, node: NodeId) -> u64 {
        self.sent_from[node.index()]
    }

    /// Re-throttles a node's NIC (the wondershaper experiments, §5.4).
    ///
    /// Active flows immediately receive new fair rates.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range, capacities are negative/non-finite,
    /// or `now` precedes the latest update.
    pub fn set_nic(&mut self, node: NodeId, nic: NicSpec, now: SimTime) {
        assert!(
            nic.uplink.is_finite()
                && nic.downlink.is_finite()
                && nic.loopback.is_finite()
                && nic.uplink >= 0.0
                && nic.downlink >= 0.0
                && nic.loopback > 0.0,
            "invalid NIC capacities"
        );
        self.advance(now);
        self.nics[node.index()] = nic;
        self.recompute_rates();
    }

    /// Starts a transfer of `bytes` from `src` to `dst`.
    ///
    /// A zero-byte flow is legal and completes at `now`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range or `now` precedes the latest
    /// update instant.
    pub fn start_flow(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        tag: T,
        now: SimTime,
    ) -> FlowId {
        assert!(
            src.index() < self.nics.len() && dst.index() < self.nics.len(),
            "flow endpoints out of range"
        );
        self.advance(now);
        let id = self.next_id;
        self.next_id += 1;
        self.flows.insert(
            id,
            Flow {
                src,
                dst,
                bytes,
                tag,
                remaining: bytes as f64,
                rate: 0.0,
                started: now,
            },
        );
        self.recompute_rates();
        FlowId(id)
    }

    /// Cancels an active flow, returning its tag, or `None` if it already
    /// completed (or was cancelled).
    pub fn cancel_flow(&mut self, id: FlowId, now: SimTime) -> Option<T> {
        self.advance(now);
        let flow = self.flows.remove(&id.0)?;
        self.recompute_rates();
        Some(flow.tag)
    }

    /// The earliest instant at which some active flow completes, or `None`
    /// when no flow is active or every active flow is starved (zero rate).
    pub fn next_completion(&self) -> Option<SimTime> {
        self.flows
            .values()
            .filter(|f| f.rate > 0.0 || f.remaining <= 0.0)
            .map(|f| {
                if f.remaining <= 0.0 {
                    self.updated
                } else {
                    // Round *up* with a 1 ns margin so that advancing to the
                    // returned instant always pushes `remaining` to (or
                    // below) zero — rounding to nearest would strand a
                    // fraction of a byte and loop the completion timer at
                    // one timestamp forever.
                    let secs = f.remaining / f.rate;
                    let nanos = (secs * 1e9).ceil() as u64 + 1;
                    self.updated + faasflow_sim::SimDuration::from_nanos(nanos)
                }
            })
            .min()
    }

    /// Advances the fluid model to `now` and removes every flow that has
    /// completed by then, returning `(id, flow)` pairs sorted by flow id for
    /// determinism.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the latest update instant.
    pub fn take_completed(&mut self, now: SimTime) -> Vec<(FlowId, Flow<T>)> {
        self.advance(now);
        // Epsilon: progressive filling works in f64 bytes; a flow within a
        // millionth of a byte of the end is done.
        const EPS: f64 = 1e-6;
        let mut done: Vec<u64> = self
            .flows
            .iter()
            .filter(|(_, f)| f.remaining <= EPS)
            .map(|(&id, _)| id)
            .collect();
        done.sort_unstable();
        let mut out = Vec::with_capacity(done.len());
        for id in done {
            let flow = self.flows.remove(&id).expect("flow id collected above");
            self.delivered_to[flow.dst.index()] += flow.bytes;
            self.sent_from[flow.src.index()] += flow.bytes;
            out.push((FlowId(id), flow));
        }
        if !out.is_empty() {
            self.recompute_rates();
        }
        out
    }

    /// Read access to an active flow.
    pub fn flow(&self, id: FlowId) -> Option<&Flow<T>> {
        self.flows.get(&id.0)
    }

    /// Iterates over active flows in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (FlowId, &Flow<T>)> {
        self.flows.iter().map(|(&id, f)| (FlowId(id), f))
    }

    /// Moves remaining-byte counters forward to `now` at current rates.
    fn advance(&mut self, now: SimTime) {
        assert!(
            now >= self.updated,
            "flow network time moved backwards: {now} < {}",
            self.updated
        );
        let dt = (now - self.updated).as_secs_f64();
        if dt > 0.0 {
            for flow in self.flows.values_mut() {
                flow.remaining = (flow.remaining - flow.rate * dt).max(0.0);
            }
        }
        self.updated = now;
    }

    /// Progressive filling: computes the unique max-min fair allocation.
    fn recompute_rates(&mut self) {
        if self.flows.is_empty() {
            return;
        }
        // Deterministic ordering of flows regardless of hash state.
        let mut ids: Vec<u64> = self.flows.keys().copied().collect();
        ids.sort_unstable();

        // Resource capacities and membership.
        let mut cap: HashMap<Resource, f64> = HashMap::new();
        let mut members: HashMap<Resource, Vec<usize>> = HashMap::new();
        let mut flow_resources: Vec<[Resource; 2]> = Vec::with_capacity(ids.len());
        for (idx, id) in ids.iter().enumerate() {
            let f = &self.flows[id];
            let (r1, r2) = if f.src == f.dst {
                let r = Resource::Loop(f.src.index());
                (r, r)
            } else {
                (Resource::Up(f.src.index()), Resource::Down(f.dst.index()))
            };
            for r in [r1, r2] {
                let capacity = match r {
                    Resource::Up(i) => self.nics[i].uplink,
                    Resource::Down(i) => self.nics[i].downlink,
                    Resource::Loop(i) => self.nics[i].loopback,
                };
                cap.entry(r).or_insert(capacity);
                let m = members.entry(r).or_default();
                // A loopback flow hits the same resource twice; count once.
                if m.last() != Some(&idx) {
                    m.push(idx);
                }
            }
            flow_resources.push([r1, r2]);
        }

        let n = ids.len();
        let mut rate = vec![0.0_f64; n];
        let mut fixed = vec![false; n];
        let mut unfixed_count: HashMap<Resource, usize> =
            members.iter().map(|(&r, v)| (r, v.len())).collect();
        let mut remaining_cap = cap.clone();
        let mut fixed_total = 0usize;

        while fixed_total < n {
            // Find the bottleneck: the resource with the smallest fair share
            // among resources that still carry unfixed flows.
            let mut best: Option<(f64, Resource)> = None;
            for (&r, &count) in &unfixed_count {
                if count == 0 {
                    continue;
                }
                let share = remaining_cap[&r].max(0.0) / count as f64;
                let better = match best {
                    None => true,
                    Some((s, br)) => {
                        share < s - 1e-12
                            || (share <= s + 1e-12 && resource_key(r) < resource_key(br))
                    }
                };
                if better {
                    best = Some((share, r));
                }
            }
            let Some((share, bottleneck)) = best else {
                break; // every remaining flow is on empty resources
            };
            // Fix all unfixed flows crossing the bottleneck at `share`.
            let flows_on: Vec<usize> = members[&bottleneck]
                .iter()
                .copied()
                .filter(|&i| !fixed[i])
                .collect();
            debug_assert!(!flows_on.is_empty());
            for i in flows_on {
                rate[i] = share;
                fixed[i] = true;
                fixed_total += 1;
                for r in flow_resources[i] {
                    *remaining_cap.get_mut(&r).expect("resource registered") -= share;
                    *unfixed_count.get_mut(&r).expect("resource registered") -= 1;
                    if flow_resources[i][0] == flow_resources[i][1] {
                        break; // loopback: single resource, subtract once
                    }
                }
            }
        }

        for (idx, id) in ids.iter().enumerate() {
            self.flows.get_mut(id).expect("id present").rate = rate[idx].max(0.0);
        }
    }
}

fn resource_key(r: Resource) -> (u8, usize) {
    match r {
        Resource::Up(i) => (0, i),
        Resource::Down(i) => (1, i),
        Resource::Loop(i) => (2, i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasflow_sim::SimDuration;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    /// Completion instants carry a deliberate +1–2 ns round-up margin.
    fn assert_near(actual: Option<SimTime>, expected: SimTime) {
        let actual = actual.expect("a completion is pending");
        let diff = actual.as_nanos().abs_diff(expected.as_nanos());
        assert!(
            diff <= 2,
            "completion {actual} not within 2ns of {expected}"
        );
    }

    fn two_node_net() -> FlowNet<u32> {
        FlowNet::new(vec![NicSpec::symmetric(100e6), NicSpec::symmetric(100e6)])
    }

    #[test]
    fn single_flow_runs_at_link_speed() {
        let mut net = two_node_net();
        net.start_flow(NodeId::new(0), NodeId::new(1), 100_000_000, 1, t(0.0));
        assert_near(net.next_completion(), t(1.0));
    }

    #[test]
    fn two_flows_share_a_downlink_fairly() {
        let mut net = two_node_net();
        net.start_flow(NodeId::new(0), NodeId::new(1), 50_000_000, 1, t(0.0));
        net.start_flow(NodeId::new(0), NodeId::new(1), 50_000_000, 2, t(0.0));
        // 50 MB each at 50 MB/s fair share -> both done at 1s.
        assert_near(net.next_completion(), t(1.0));
        let done = net.take_completed(net.next_completion().unwrap());
        assert_eq!(done.len(), 2);
        assert_eq!(net.active_flows(), 0);
    }

    #[test]
    fn departure_releases_bandwidth() {
        let mut net = two_node_net();
        net.start_flow(NodeId::new(0), NodeId::new(1), 50_000_000, 1, t(0.0));
        net.start_flow(NodeId::new(0), NodeId::new(1), 100_000_000, 2, t(0.0));
        // Share 50/50 until flow 1 finishes at t=1 (50MB at 50MB/s)...
        assert_near(net.next_completion(), t(1.0));
        let done = net.take_completed(net.next_completion().unwrap());
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1.tag, 1);
        // ...then flow 2 has 50MB left at full 100MB/s -> t=1.5.
        assert_near(net.next_completion(), t(1.5));
    }

    #[test]
    fn distinct_bottlenecks_are_independent() {
        // Node 2 has a slow downlink; a flow to node 1 must be unaffected.
        let mut net: FlowNet<u32> = FlowNet::new(vec![
            NicSpec::symmetric(100e6),
            NicSpec::symmetric(100e6),
            NicSpec {
                uplink: 100e6,
                downlink: 10e6,
                loopback: 2e9,
            },
        ]);
        net.start_flow(NodeId::new(0), NodeId::new(1), 100_000_000, 1, t(0.0));
        net.start_flow(NodeId::new(0), NodeId::new(2), 10_000_000, 2, t(0.0));
        // Uplink of node 0 carries both: fair share would be 50/50, but the
        // node-2 flow is capped at 10 MB/s by its downlink, so the other
        // claims the residual 90 MB/s (max-min, not plain equal split).
        let f1_rate: Vec<f64> = net.iter().map(|(_, f)| f.rate()).collect();
        let mut rates = f1_rate.clone();
        rates.sort_by(f64::total_cmp);
        assert!((rates[0] - 10e6).abs() < 1.0, "slow flow pinned at 10MB/s");
        assert!((rates[1] - 90e6).abs() < 1.0, "fast flow gets residual");
    }

    #[test]
    fn storage_node_throttle_slows_everything() {
        let mut net = two_node_net();
        net.start_flow(NodeId::new(0), NodeId::new(1), 100_000_000, 1, t(0.0));
        // Re-throttle destination downlink to 25 MB/s at t=0.5 (50MB sent).
        net.set_nic(NodeId::new(1), NicSpec::symmetric(25e6), t(0.5));
        // Remaining 50MB at 25MB/s -> completes at 0.5 + 2.0 = 2.5s.
        assert_near(net.next_completion(), t(2.5));
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut net = two_node_net();
        let id = net.start_flow(NodeId::new(0), NodeId::new(1), 0, 7, t(0.0));
        assert_eq!(net.next_completion(), Some(t(0.0)));
        let done = net.take_completed(t(0.0));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, id);
    }

    #[test]
    fn loopback_does_not_consume_nic() {
        let mut net = two_node_net();
        // A big loopback flow on node 0...
        net.start_flow(NodeId::new(0), NodeId::new(0), 1_000_000_000, 1, t(0.0));
        // ...must not slow a cross-node flow.
        net.start_flow(NodeId::new(0), NodeId::new(1), 100_000_000, 2, t(0.0));
        let rates: Vec<(u32, f64)> = net.iter().map(|(_, f)| (f.tag, f.rate())).collect();
        let cross = rates.iter().find(|(tag, _)| *tag == 2).unwrap().1;
        assert!((cross - 100e6).abs() < 1.0);
        let local = rates.iter().find(|(tag, _)| *tag == 1).unwrap().1;
        assert!((local - 2e9).abs() < 1.0);
    }

    #[test]
    fn cancel_returns_tag_and_frees_capacity() {
        let mut net = two_node_net();
        let a = net.start_flow(NodeId::new(0), NodeId::new(1), 100_000_000, 10, t(0.0));
        net.start_flow(NodeId::new(0), NodeId::new(1), 100_000_000, 20, t(0.0));
        assert_eq!(net.cancel_flow(a, t(0.1)), Some(10));
        assert_eq!(net.cancel_flow(a, t(0.1)), None);
        // Survivor now runs at full speed: 100MB total, 5MB done in the
        // shared phase (50MB/s * 0.1s), 95MB left at 100MB/s -> 0.1+0.95.
        let expected = t(0.1) + SimDuration::from_secs_f64(0.95);
        assert_near(net.next_completion(), expected);
    }

    #[test]
    fn delivered_bytes_accounting() {
        let mut net = two_node_net();
        net.start_flow(NodeId::new(0), NodeId::new(1), 1000, 1, t(0.0));
        let _ = net.take_completed(t(1.0));
        assert_eq!(net.bytes_delivered_to(NodeId::new(1)), 1000);
        assert_eq!(net.bytes_sent_from(NodeId::new(0)), 1000);
        assert_eq!(net.bytes_delivered_to(NodeId::new(0)), 0);
    }

    #[test]
    fn many_flows_rates_sum_within_capacity() {
        let mut net: FlowNet<usize> = FlowNet::new(vec![
            NicSpec::symmetric(50e6),
            NicSpec::symmetric(100e6),
            NicSpec::symmetric(30e6),
        ]);
        for i in 0..20 {
            let src = NodeId::new((i % 3) as u32);
            let dst = NodeId::new(((i + 1) % 3) as u32);
            net.start_flow(src, dst, 10_000_000, i, t(0.0));
        }
        // Invariant: per-resource sum of rates <= capacity (+eps).
        let mut up = [0.0f64; 3];
        let mut down = [0.0f64; 3];
        for (_, f) in net.iter() {
            up[f.src.index()] += f.rate();
            down[f.dst.index()] += f.rate();
        }
        let caps = [50e6, 100e6, 30e6];
        for i in 0..3 {
            assert!(up[i] <= caps[i] + 1e-3, "uplink {i} oversubscribed");
            assert!(down[i] <= caps[i] + 1e-3, "downlink {i} oversubscribed");
        }
    }

    #[test]
    #[should_panic(expected = "time moved backwards")]
    fn time_travel_panics() {
        let mut net = two_node_net();
        net.start_flow(NodeId::new(0), NodeId::new(1), 10, 1, t(1.0));
        net.start_flow(NodeId::new(0), NodeId::new(1), 10, 2, t(0.5));
    }
}
