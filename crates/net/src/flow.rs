//! Max-min fair flow network.
//!
//! Every bulk data transfer in the cluster (remote-store reads and writes,
//! §2.4's data-shipping pattern) is a [`Flow`] from a source node to a
//! destination node. A flow consumes the source's uplink and the
//! destination's downlink; rates are assigned by **progressive filling**,
//! which yields the unique max-min fair allocation — the classic fluid model
//! of TCP fair share over a shared bottleneck (here: the storage node NIC).
//!
//! ## Incremental recomputation
//!
//! Max-min allocation decomposes over connected components of the
//! flow↔resource bipartite graph: rates in one component are independent
//! of every other component. The network exploits that two ways:
//!
//! * **Lazily** — mutations (start/cancel/completion/NIC change) only mark
//!   the touched resources dirty; the actual fill runs at the next rate
//!   read. Starting k flows at one instant costs one recomputation, not k.
//! * **Locally** — the fill walks the component(s) reachable from the
//!   dirty resources and re-fills only those; flows in untouched
//!   components keep their rates, which are bitwise what a full fill
//!   would assign (debug builds assert exactly that against a reference
//!   full progressive filling after every fill).
//!
//! Resources are indexed densely (uplink `i`, downlink `n+i`, loopback
//! `2n+i`) so the fill runs on flat arrays — no hashing on the hot path.
//! Between recomputations rates are constant, so remaining bytes advance
//! linearly and the earliest completion time is exact.

use faasflow_sim::{NodeId, SimTime};
use serde::{Deserialize, Serialize};

/// Identifier of an active (or completed) flow within one [`FlowNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowId(u64);

impl std::fmt::Display for FlowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "flow{}", self.0)
    }
}

/// NIC capacities of one node, in bytes per second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NicSpec {
    /// Uplink (egress) capacity in bytes/s.
    pub uplink: f64,
    /// Downlink (ingress) capacity in bytes/s.
    pub downlink: f64,
    /// Loopback capacity for `src == dst` flows, in bytes/s. Loopback does
    /// not consume the NIC (default 2 GB/s, roughly memcpy-through-pagecache).
    pub loopback: f64,
}

impl NicSpec {
    /// A NIC with equal uplink and downlink capacity.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is negative or non-finite.
    pub fn symmetric(bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec >= 0.0,
            "NIC capacity must be finite and non-negative"
        );
        NicSpec {
            uplink: bytes_per_sec,
            downlink: bytes_per_sec,
            loopback: 2e9,
        }
    }
}

/// One bulk transfer in progress.
#[derive(Debug, Clone, PartialEq)]
pub struct Flow<T> {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Total size of the transfer in bytes.
    pub bytes: u64,
    /// Caller-supplied payload returned on completion.
    pub tag: T,
    remaining: f64,
    rate: f64,
    started: SimTime,
}

impl<T> Flow<T> {
    /// Bytes still to transfer at the last recomputation instant.
    pub fn remaining_bytes(&self) -> f64 {
        self.remaining
    }

    /// Current max-min fair rate in bytes/s.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Instant the flow was started.
    pub fn started(&self) -> SimTime {
        self.started
    }

    /// The one or two dense resource indices this flow consumes, given
    /// `n` nodes. Loopback flows consume a single resource.
    fn resources(&self, n: usize) -> (usize, Option<usize>) {
        if self.src == self.dst {
            (2 * n + self.src.index(), None)
        } else {
            (self.src.index(), Some(n + self.dst.index()))
        }
    }
}

/// Reusable buffers for component discovery and progressive filling.
/// Stamp arrays avoid clearing: an entry is "set" when it equals the
/// current fill's stamp.
#[derive(Debug, Default)]
struct FillScratch {
    /// Per-resource visited stamp (len `3n`).
    res_stamp: Vec<u64>,
    /// Per-flow-position visited stamp.
    flow_stamp: Vec<u64>,
    /// Per-flow-position fixed-rate stamp.
    fixed_stamp: Vec<u64>,
    /// Current fill generation.
    stamp: u64,
    /// Resources of the component(s) being refilled (doubles as BFS queue).
    comp_res: Vec<u32>,
    /// Flow positions of the component(s) being refilled.
    comp_flows: Vec<u32>,
    /// Residual capacity per resource (valid only for `comp_res` entries).
    remaining_cap: Vec<f64>,
    /// Unfixed-flow count per resource (valid only for `comp_res` entries).
    unfixed: Vec<u32>,
}

/// A max-min fair flow network over a fixed set of nodes.
///
/// `T` is the caller's per-flow payload (e.g. "this transfer is the output
/// of function 12 of invocation 7"), handed back when the flow completes.
#[derive(Debug)]
pub struct FlowNet<T> {
    nics: Vec<NicSpec>,
    /// Active flows sorted by id. Ids are monotonic, so insertion is a
    /// push at the end; lookup is a binary search.
    flows: Vec<(u64, Flow<T>)>,
    /// Per-resource member flow ids (dense resource index, len `3n`).
    members: Vec<Vec<u64>>,
    next_id: u64,
    /// Instant up to which all `remaining` fields are accurate.
    updated: SimTime,
    /// Total bytes delivered, per destination node (utilisation accounting).
    delivered_to: Vec<u64>,
    /// Total bytes sent, per source node.
    sent_from: Vec<u64>,
    /// Dirty seed resources accumulated since the last fill (may repeat).
    dirty: Vec<u32>,
    /// True when every flow's `rate` reflects the current flow set.
    rates_current: bool,
    scratch: FillScratch,
    /// Spare storage for `take_completed`'s compaction pass.
    flow_spare: Vec<(u64, Flow<T>)>,
}

impl<T> FlowNet<T> {
    /// Creates a network over `nics.len()` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nics` is empty.
    pub fn new(nics: Vec<NicSpec>) -> Self {
        assert!(!nics.is_empty(), "a flow network needs at least one node");
        let n = nics.len();
        FlowNet {
            nics,
            flows: Vec::new(),
            members: vec![Vec::new(); 3 * n],
            next_id: 0,
            updated: SimTime::ZERO,
            delivered_to: vec![0; n],
            sent_from: vec![0; n],
            dirty: Vec::new(),
            rates_current: true,
            scratch: FillScratch::default(),
            flow_spare: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nics.len()
    }

    /// Number of active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Total bytes fully delivered to `node` since construction.
    pub fn bytes_delivered_to(&self, node: NodeId) -> u64 {
        self.delivered_to[node.index()]
    }

    /// Total bytes fully sent from `node` since construction.
    pub fn bytes_sent_from(&self, node: NodeId) -> u64 {
        self.sent_from[node.index()]
    }

    /// Re-throttles a node's NIC (the wondershaper experiments, §5.4).
    ///
    /// Active flows receive new fair rates before the next rate read.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range, capacities are negative/non-finite,
    /// or `now` precedes the latest update.
    pub fn set_nic(&mut self, node: NodeId, nic: NicSpec, now: SimTime) {
        assert!(
            nic.uplink.is_finite()
                && nic.downlink.is_finite()
                && nic.loopback.is_finite()
                && nic.uplink >= 0.0
                && nic.downlink >= 0.0
                && nic.loopback > 0.0,
            "invalid NIC capacities"
        );
        self.advance(now);
        let n = self.nics.len();
        let i = node.index();
        self.nics[i] = nic;
        self.mark_dirty(i);
        self.mark_dirty(n + i);
        self.mark_dirty(2 * n + i);
    }

    /// Starts a transfer of `bytes` from `src` to `dst`.
    ///
    /// A zero-byte flow is legal and completes at `now`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range or `now` precedes the latest
    /// update instant.
    pub fn start_flow(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        tag: T,
        now: SimTime,
    ) -> FlowId {
        assert!(
            src.index() < self.nics.len() && dst.index() < self.nics.len(),
            "flow endpoints out of range"
        );
        self.advance(now);
        let id = self.next_id;
        self.next_id += 1;
        let flow = Flow {
            src,
            dst,
            bytes,
            tag,
            remaining: bytes as f64,
            rate: 0.0,
            started: now,
        };
        let (r1, r2) = flow.resources(self.nics.len());
        self.members[r1].push(id);
        self.mark_dirty(r1);
        if let Some(r2) = r2 {
            self.members[r2].push(id);
            self.mark_dirty(r2);
        }
        self.flows.push((id, flow));
        FlowId(id)
    }

    /// Cancels an active flow, returning its tag, or `None` if it already
    /// completed (or was cancelled).
    pub fn cancel_flow(&mut self, id: FlowId, now: SimTime) -> Option<T> {
        self.advance(now);
        let pos = self.flows.binary_search_by_key(&id.0, |e| e.0).ok()?;
        let (_, flow) = self.flows.remove(pos);
        self.unlink(id.0, &flow);
        Some(flow.tag)
    }

    /// The earliest instant at which some active flow completes, or `None`
    /// when no flow is active or every active flow is starved (zero rate).
    pub fn next_completion(&mut self) -> Option<SimTime> {
        self.ensure_rates();
        let updated = self.updated;
        self.flows
            .iter()
            .map(|(_, f)| f)
            .filter(|f| f.rate > 0.0 || f.remaining <= 0.0)
            .map(|f| {
                if f.remaining <= 0.0 {
                    updated
                } else {
                    // Round *up* with a 1 ns margin so that advancing to the
                    // returned instant always pushes `remaining` to (or
                    // below) zero — rounding to nearest would strand a
                    // fraction of a byte and loop the completion timer at
                    // one timestamp forever.
                    let secs = f.remaining / f.rate;
                    let nanos = (secs * 1e9).ceil() as u64 + 1;
                    updated + faasflow_sim::SimDuration::from_nanos(nanos)
                }
            })
            .min()
    }

    /// Advances the fluid model to `now` and removes every flow that has
    /// completed by then, returning `(id, flow)` pairs sorted by flow id for
    /// determinism.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the latest update instant.
    pub fn take_completed(&mut self, now: SimTime) -> Vec<(FlowId, Flow<T>)> {
        let mut out = Vec::new();
        self.take_completed_into(now, &mut out);
        out
    }

    /// Allocation-free variant of [`FlowNet::take_completed`]: appends the
    /// completed flows (sorted by id) to `out`, reusing its capacity.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the latest update instant.
    pub fn take_completed_into(&mut self, now: SimTime, out: &mut Vec<(FlowId, Flow<T>)>) {
        self.advance(now);
        // Epsilon: progressive filling works in f64 bytes; a flow within a
        // millionth of a byte of the end is done.
        const EPS: f64 = 1e-6;
        if self.flows.iter().all(|(_, f)| f.remaining > EPS) {
            return;
        }
        // Stable compaction through the spare buffer: completed flows come
        // out in id order because `flows` is id-sorted.
        let mut spare = std::mem::take(&mut self.flow_spare);
        std::mem::swap(&mut self.flows, &mut spare);
        for (id, flow) in spare.drain(..) {
            if flow.remaining <= EPS {
                self.delivered_to[flow.dst.index()] += flow.bytes;
                self.sent_from[flow.src.index()] += flow.bytes;
                let (r1, r2) = flow.resources(self.nics.len());
                remove_member(&mut self.members[r1], id);
                self.mark_dirty(r1);
                if let Some(r2) = r2 {
                    remove_member(&mut self.members[r2], id);
                    self.mark_dirty(r2);
                }
                out.push((FlowId(id), flow));
            } else {
                self.flows.push((id, flow));
            }
        }
        self.flow_spare = spare;
    }

    /// Read access to an active flow.
    pub fn flow(&mut self, id: FlowId) -> Option<&Flow<T>> {
        self.ensure_rates();
        let pos = self.flows.binary_search_by_key(&id.0, |e| e.0).ok()?;
        Some(&self.flows[pos].1)
    }

    /// Iterates over active flows in ascending id order.
    pub fn iter(&mut self) -> impl Iterator<Item = (FlowId, &Flow<T>)> {
        self.ensure_rates();
        self.flows.iter().map(|(id, f)| (FlowId(*id), f))
    }

    /// Removes `flow` (already detached from `self.flows`) from the member
    /// lists and marks its resources dirty.
    fn unlink(&mut self, id: u64, flow: &Flow<T>) {
        let (r1, r2) = flow.resources(self.nics.len());
        remove_member(&mut self.members[r1], id);
        self.mark_dirty(r1);
        if let Some(r2) = r2 {
            remove_member(&mut self.members[r2], id);
            self.mark_dirty(r2);
        }
    }

    fn mark_dirty(&mut self, resource: usize) {
        self.rates_current = false;
        self.dirty.push(resource as u32);
    }

    /// Moves remaining-byte counters forward to `now` at current rates.
    fn advance(&mut self, now: SimTime) {
        assert!(
            now >= self.updated,
            "flow network time moved backwards: {now} < {}",
            self.updated
        );
        if now > self.updated {
            // Integration needs the rates that were in force since
            // `updated`; any mutations marked dirty earlier happened at
            // `updated` itself, so filling now is still correct.
            self.ensure_rates();
            let dt = (now - self.updated).as_secs_f64();
            for (_, flow) in &mut self.flows {
                flow.remaining = (flow.remaining - flow.rate * dt).max(0.0);
            }
        }
        self.updated = now;
    }

    /// Re-fills the component(s) reachable from the dirty resources.
    /// No-op when rates are already current.
    fn ensure_rates(&mut self) {
        if self.rates_current {
            return;
        }
        self.rates_current = true;
        let n3 = 3 * self.nics.len();
        let nf = self.flows.len();
        self.scratch.stamp += 1;
        let stamp = self.scratch.stamp;
        self.scratch.res_stamp.resize(n3, 0);
        self.scratch.remaining_cap.resize(n3, 0.0);
        self.scratch.unfixed.resize(n3, 0);
        if self.scratch.flow_stamp.len() < nf {
            self.scratch.flow_stamp.resize(nf, 0);
            self.scratch.fixed_stamp.resize(nf, 0);
        }
        self.scratch.comp_res.clear();
        self.scratch.comp_flows.clear();

        // Component discovery: BFS over the flow↔resource bipartite graph
        // from every dirty seed. `comp_res` doubles as the queue.
        for k in 0..self.dirty.len() {
            let r = self.dirty[k] as usize;
            if self.scratch.res_stamp[r] != stamp && !self.members[r].is_empty() {
                self.scratch.res_stamp[r] = stamp;
                self.scratch.comp_res.push(r as u32);
            }
        }
        self.dirty.clear();
        let mut head = 0;
        while head < self.scratch.comp_res.len() {
            let r = self.scratch.comp_res[head] as usize;
            head += 1;
            for k in 0..self.members[r].len() {
                let id = self.members[r][k];
                let pos = self
                    .flows
                    .binary_search_by_key(&id, |e| e.0)
                    .expect("member lists track active flows");
                if self.scratch.flow_stamp[pos] == stamp {
                    continue;
                }
                self.scratch.flow_stamp[pos] = stamp;
                self.scratch.comp_flows.push(pos as u32);
                let (r1, r2) = self.flows[pos].1.resources(self.nics.len());
                for r2 in [Some(r1), r2].into_iter().flatten() {
                    if self.scratch.res_stamp[r2] != stamp {
                        self.scratch.res_stamp[r2] = stamp;
                        self.scratch.comp_res.push(r2 as u32);
                    }
                }
            }
        }

        // Deterministic bottleneck scan order: ascending dense index, which
        // equals the (kind, node) order the tie-break key requires.
        self.scratch.comp_res.sort_unstable();
        for k in 0..self.scratch.comp_res.len() {
            let r = self.scratch.comp_res[k] as usize;
            self.scratch.remaining_cap[r] = self.capacity(r);
            self.scratch.unfixed[r] = 0;
        }
        for k in 0..self.scratch.comp_flows.len() {
            let pos = self.scratch.comp_flows[k] as usize;
            let (r1, r2) = self.flows[pos].1.resources(self.nics.len());
            self.scratch.unfixed[r1] += 1;
            if let Some(r2) = r2 {
                self.scratch.unfixed[r2] += 1;
            }
        }

        // Progressive filling restricted to the component: repeatedly pick
        // the resource with the smallest fair share among those still
        // carrying unfixed flows, and fix its flows at that share. Rates in
        // a component are independent of all other components, so this is
        // bitwise the allocation a global fill would produce.
        let total = self.scratch.comp_flows.len();
        let mut fixed_n = 0;
        while fixed_n < total {
            let mut best: Option<(f64, usize)> = None;
            for k in 0..self.scratch.comp_res.len() {
                let r = self.scratch.comp_res[k] as usize;
                let count = self.scratch.unfixed[r];
                if count == 0 {
                    continue;
                }
                let share = self.scratch.remaining_cap[r].max(0.0) / f64::from(count);
                // Ascending scan: on an epsilon tie the earlier (smaller
                // key) resource wins, matching the reference tie-break.
                if best.is_none_or(|(s, _)| share < s - 1e-12) {
                    best = Some((share, r));
                }
            }
            let Some((share, bottleneck)) = best else {
                break; // every remaining flow is on empty resources
            };
            for k in 0..self.members[bottleneck].len() {
                let id = self.members[bottleneck][k];
                let pos = self
                    .flows
                    .binary_search_by_key(&id, |e| e.0)
                    .expect("member lists track active flows");
                if self.scratch.fixed_stamp[pos] == stamp {
                    continue;
                }
                self.scratch.fixed_stamp[pos] = stamp;
                fixed_n += 1;
                self.flows[pos].1.rate = share.max(0.0);
                let (r1, r2) = self.flows[pos].1.resources(self.nics.len());
                self.scratch.remaining_cap[r1] -= share;
                self.scratch.unfixed[r1] -= 1;
                if let Some(r2) = r2 {
                    self.scratch.remaining_cap[r2] -= share;
                    self.scratch.unfixed[r2] -= 1;
                }
            }
        }

        #[cfg(debug_assertions)]
        self.assert_matches_reference_fill();
    }

    /// Capacity of a dense resource index.
    fn capacity(&self, r: usize) -> f64 {
        let n = self.nics.len();
        if r < n {
            self.nics[r].uplink
        } else if r < 2 * n {
            self.nics[r - n].downlink
        } else {
            self.nics[r - 2 * n].loopback
        }
    }

    /// Debug cross-check: every flow's rate must be bitwise identical to
    /// what a full (global, from-scratch) progressive filling assigns.
    /// This is the invariant that makes incremental refills safe.
    #[cfg(debug_assertions)]
    fn assert_matches_reference_fill(&self) {
        let reference = self.reference_rates();
        for (pos, (id, flow)) in self.flows.iter().enumerate() {
            assert!(
                flow.rate.to_bits() == reference[pos].to_bits(),
                "incremental fill diverged from full fill for flow {id}: \
                 incremental {inc} vs reference {reference}",
                inc = flow.rate,
                reference = reference[pos],
            );
        }
    }

    /// Reference allocation: global progressive filling over all flows,
    /// computed from scratch. Debug-only; allocates freely.
    #[cfg(debug_assertions)]
    fn reference_rates(&self) -> Vec<f64> {
        let n = self.nics.len();
        let nf = self.flows.len();
        let mut cap = vec![0.0f64; 3 * n];
        let mut unfixed = vec![0u32; 3 * n];
        let mut resources: Vec<(usize, Option<usize>)> = Vec::with_capacity(nf);
        for (_, f) in &self.flows {
            let (r1, r2) = f.resources(n);
            cap[r1] = self.capacity(r1);
            unfixed[r1] += 1;
            if let Some(r2) = r2 {
                cap[r2] = self.capacity(r2);
                unfixed[r2] += 1;
            }
            resources.push((r1, r2));
        }
        let mut rate = vec![0.0f64; nf];
        let mut fixed = vec![false; nf];
        let mut fixed_n = 0;
        while fixed_n < nf {
            let mut best: Option<(f64, usize)> = None;
            for (r, &count) in unfixed.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                let share = cap[r].max(0.0) / f64::from(count);
                if best.is_none_or(|(s, _)| share < s - 1e-12) {
                    best = Some((share, r));
                }
            }
            let Some((share, bottleneck)) = best else {
                break;
            };
            for pos in 0..nf {
                if fixed[pos] {
                    continue;
                }
                let (r1, r2) = resources[pos];
                if r1 != bottleneck && r2 != Some(bottleneck) {
                    continue;
                }
                fixed[pos] = true;
                fixed_n += 1;
                rate[pos] = share.max(0.0);
                cap[r1] -= share;
                unfixed[r1] -= 1;
                if let Some(r2) = r2 {
                    cap[r2] -= share;
                    unfixed[r2] -= 1;
                }
            }
        }
        rate
    }
}

/// Removes one occurrence of `id` from a member list.
fn remove_member(members: &mut Vec<u64>, id: u64) {
    let pos = members
        .iter()
        .position(|&m| m == id)
        .expect("member lists track active flows");
    members.swap_remove(pos);
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasflow_sim::SimDuration;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    /// Completion instants carry a deliberate +1–2 ns round-up margin.
    fn assert_near(actual: Option<SimTime>, expected: SimTime) {
        let actual = actual.expect("a completion is pending");
        let diff = actual.as_nanos().abs_diff(expected.as_nanos());
        assert!(
            diff <= 2,
            "completion {actual} not within 2ns of {expected}"
        );
    }

    fn two_node_net() -> FlowNet<u32> {
        FlowNet::new(vec![NicSpec::symmetric(100e6), NicSpec::symmetric(100e6)])
    }

    #[test]
    fn single_flow_runs_at_link_speed() {
        let mut net = two_node_net();
        net.start_flow(NodeId::new(0), NodeId::new(1), 100_000_000, 1, t(0.0));
        assert_near(net.next_completion(), t(1.0));
    }

    #[test]
    fn two_flows_share_a_downlink_fairly() {
        let mut net = two_node_net();
        net.start_flow(NodeId::new(0), NodeId::new(1), 50_000_000, 1, t(0.0));
        net.start_flow(NodeId::new(0), NodeId::new(1), 50_000_000, 2, t(0.0));
        // 50 MB each at 50 MB/s fair share -> both done at 1s.
        assert_near(net.next_completion(), t(1.0));
        let at = net.next_completion().unwrap();
        let done = net.take_completed(at);
        assert_eq!(done.len(), 2);
        assert_eq!(net.active_flows(), 0);
    }

    #[test]
    fn departure_releases_bandwidth() {
        let mut net = two_node_net();
        net.start_flow(NodeId::new(0), NodeId::new(1), 50_000_000, 1, t(0.0));
        net.start_flow(NodeId::new(0), NodeId::new(1), 100_000_000, 2, t(0.0));
        // Share 50/50 until flow 1 finishes at t=1 (50MB at 50MB/s)...
        assert_near(net.next_completion(), t(1.0));
        let at = net.next_completion().unwrap();
        let done = net.take_completed(at);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1.tag, 1);
        // ...then flow 2 has 50MB left at full 100MB/s -> t=1.5.
        assert_near(net.next_completion(), t(1.5));
    }

    #[test]
    fn distinct_bottlenecks_are_independent() {
        // Node 2 has a slow downlink; a flow to node 1 must be unaffected.
        let mut net: FlowNet<u32> = FlowNet::new(vec![
            NicSpec::symmetric(100e6),
            NicSpec::symmetric(100e6),
            NicSpec {
                uplink: 100e6,
                downlink: 10e6,
                loopback: 2e9,
            },
        ]);
        net.start_flow(NodeId::new(0), NodeId::new(1), 100_000_000, 1, t(0.0));
        net.start_flow(NodeId::new(0), NodeId::new(2), 10_000_000, 2, t(0.0));
        // Uplink of node 0 carries both: fair share would be 50/50, but the
        // node-2 flow is capped at 10 MB/s by its downlink, so the other
        // claims the residual 90 MB/s (max-min, not plain equal split).
        let f1_rate: Vec<f64> = net.iter().map(|(_, f)| f.rate()).collect();
        let mut rates = f1_rate.clone();
        rates.sort_by(f64::total_cmp);
        assert!((rates[0] - 10e6).abs() < 1.0, "slow flow pinned at 10MB/s");
        assert!((rates[1] - 90e6).abs() < 1.0, "fast flow gets residual");
    }

    #[test]
    fn storage_node_throttle_slows_everything() {
        let mut net = two_node_net();
        net.start_flow(NodeId::new(0), NodeId::new(1), 100_000_000, 1, t(0.0));
        // Re-throttle destination downlink to 25 MB/s at t=0.5 (50MB sent).
        net.set_nic(NodeId::new(1), NicSpec::symmetric(25e6), t(0.5));
        // Remaining 50MB at 25MB/s -> completes at 0.5 + 2.0 = 2.5s.
        assert_near(net.next_completion(), t(2.5));
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut net = two_node_net();
        let id = net.start_flow(NodeId::new(0), NodeId::new(1), 0, 7, t(0.0));
        assert_eq!(net.next_completion(), Some(t(0.0)));
        let done = net.take_completed(t(0.0));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, id);
    }

    #[test]
    fn loopback_does_not_consume_nic() {
        let mut net = two_node_net();
        // A big loopback flow on node 0...
        net.start_flow(NodeId::new(0), NodeId::new(0), 1_000_000_000, 1, t(0.0));
        // ...must not slow a cross-node flow.
        net.start_flow(NodeId::new(0), NodeId::new(1), 100_000_000, 2, t(0.0));
        let rates: Vec<(u32, f64)> = net.iter().map(|(_, f)| (f.tag, f.rate())).collect();
        let cross = rates.iter().find(|(tag, _)| *tag == 2).unwrap().1;
        assert!((cross - 100e6).abs() < 1.0);
        let local = rates.iter().find(|(tag, _)| *tag == 1).unwrap().1;
        assert!((local - 2e9).abs() < 1.0);
    }

    #[test]
    fn cancel_returns_tag_and_frees_capacity() {
        let mut net = two_node_net();
        let a = net.start_flow(NodeId::new(0), NodeId::new(1), 100_000_000, 10, t(0.0));
        net.start_flow(NodeId::new(0), NodeId::new(1), 100_000_000, 20, t(0.0));
        assert_eq!(net.cancel_flow(a, t(0.1)), Some(10));
        assert_eq!(net.cancel_flow(a, t(0.1)), None);
        // Survivor now runs at full speed: 100MB total, 5MB done in the
        // shared phase (50MB/s * 0.1s), 95MB left at 100MB/s -> 0.1+0.95.
        let expected = t(0.1) + SimDuration::from_secs_f64(0.95);
        assert_near(net.next_completion(), expected);
    }

    #[test]
    fn delivered_bytes_accounting() {
        let mut net = two_node_net();
        net.start_flow(NodeId::new(0), NodeId::new(1), 1000, 1, t(0.0));
        let _ = net.take_completed(t(1.0));
        assert_eq!(net.bytes_delivered_to(NodeId::new(1)), 1000);
        assert_eq!(net.bytes_sent_from(NodeId::new(0)), 1000);
        assert_eq!(net.bytes_delivered_to(NodeId::new(0)), 0);
    }

    #[test]
    fn many_flows_rates_sum_within_capacity() {
        let mut net: FlowNet<usize> = FlowNet::new(vec![
            NicSpec::symmetric(50e6),
            NicSpec::symmetric(100e6),
            NicSpec::symmetric(30e6),
        ]);
        for i in 0..20 {
            let src = NodeId::new((i % 3) as u32);
            let dst = NodeId::new(((i + 1) % 3) as u32);
            net.start_flow(src, dst, 10_000_000, i, t(0.0));
        }
        // Invariant: per-resource sum of rates <= capacity (+eps).
        let mut up = [0.0f64; 3];
        let mut down = [0.0f64; 3];
        for (_, f) in net.iter() {
            up[f.src.index()] += f.rate();
            down[f.dst.index()] += f.rate();
        }
        let caps = [50e6, 100e6, 30e6];
        for i in 0..3 {
            assert!(up[i] <= caps[i] + 1e-3, "uplink {i} oversubscribed");
            assert!(down[i] <= caps[i] + 1e-3, "downlink {i} oversubscribed");
        }
    }

    #[test]
    fn batched_starts_match_sequential_reads() {
        // k starts at one instant cost one recompute; the resulting rates
        // must equal what per-start recomputation would have produced
        // (the debug cross-check verifies against the full fill too).
        let mut net = two_node_net();
        for i in 0..10 {
            net.start_flow(NodeId::new(0), NodeId::new(1), 10_000_000, i, t(0.0));
        }
        for (_, f) in net.iter() {
            assert!((f.rate() - 10e6).abs() < 1.0, "fair share of 10 flows");
        }
    }

    #[test]
    fn incremental_refill_tracks_disjoint_components() {
        // Two disjoint flow groups; mutating one must leave the other's
        // rates untouched (and the debug cross-check proves they stay
        // exactly the full-fill allocation).
        let mut net: FlowNet<u32> = FlowNet::new(vec![
            NicSpec::symmetric(100e6),
            NicSpec::symmetric(100e6),
            NicSpec::symmetric(40e6),
            NicSpec::symmetric(40e6),
        ]);
        net.start_flow(NodeId::new(0), NodeId::new(1), 50_000_000, 1, t(0.0));
        let b = net.start_flow(NodeId::new(2), NodeId::new(3), 50_000_000, 2, t(0.0));
        net.start_flow(NodeId::new(2), NodeId::new(3), 50_000_000, 3, t(0.0));
        let rates: Vec<(u32, f64)> = net.iter().map(|(_, f)| (f.tag, f.rate())).collect();
        assert!((rates[0].1 - 100e6).abs() < 1.0);
        assert!((rates[1].1 - 20e6).abs() < 1.0);
        // Cancel one 40e6-group flow: its sibling doubles, group 1 stays.
        net.cancel_flow(b, t(0.1));
        let rates: Vec<(u32, f64)> = net.iter().map(|(_, f)| (f.tag, f.rate())).collect();
        assert_eq!(rates.len(), 2);
        assert!((rates[0].1 - 100e6).abs() < 1.0);
        assert!((rates[1].1 - 40e6).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "time moved backwards")]
    fn time_travel_panics() {
        let mut net = two_node_net();
        net.start_flow(NodeId::new(0), NodeId::new(1), 10, 1, t(1.0));
        net.start_flow(NodeId::new(0), NodeId::new(1), 10, 2, t(0.5));
    }
}
