//! Control-plane message latency model.
//!
//! Both schedule patterns exchange small control messages:
//!
//! * **MasterSP** — task-assignment messages (master → worker) and
//!   execution-state returns (worker → master), §2.3's stages 1 and 3.
//! * **WorkerSP** — function execution-state synchronisation between worker
//!   engines over TCP, and in-process RPC when predecessor and successor
//!   live on the same worker (§3.1).
//!
//! Messages are a few hundred bytes, so they never contend with the bulk
//! data flows in a measurable way; the cost that matters is the round-trip
//! and protocol overhead. The model is `base + bytes/bandwidth`, with
//! multiplicative jitter drawn deterministically from the simulation RNG.

use faasflow_sim::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// Latency model for a class of small control messages.
///
/// ```
/// use faasflow_net::MessageModel;
/// use faasflow_sim::SimRng;
///
/// let model = MessageModel::lan_tcp();
/// let mut rng = SimRng::seed_from(1);
/// let d = model.latency(256, &mut rng);
/// assert!(d.as_millis_f64() > 0.1 && d.as_millis_f64() < 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MessageModel {
    /// Fixed one-way latency (propagation + kernel + protocol handling).
    pub base: SimDuration,
    /// Effective bandwidth applied to the payload, bytes/s.
    pub bandwidth: f64,
    /// Multiplicative jitter amplitude: the sampled latency is uniform in
    /// `[1 - jitter, 1 + jitter] * nominal`. Zero disables jitter.
    pub jitter: f64,
}

impl MessageModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is not positive/finite or `jitter` is outside
    /// `[0, 1)`.
    pub fn new(base: SimDuration, bandwidth: f64, jitter: f64) -> Self {
        assert!(
            bandwidth.is_finite() && bandwidth > 0.0,
            "message bandwidth must be positive"
        );
        assert!(
            (0.0..1.0).contains(&jitter),
            "jitter must be in [0, 1), got {jitter}"
        );
        MessageModel {
            base,
            bandwidth,
            jitter,
        }
    }

    /// Cross-node TCP on a datacenter LAN: ~1.5 ms base (connect + send on a gevent loop), 1 GB/s payload
    /// bandwidth, ±25 % jitter. Used for master↔worker and worker↔worker
    /// messages.
    pub fn lan_tcp() -> Self {
        MessageModel::new(SimDuration::from_micros(1500), 1e9, 0.25)
    }

    /// Same-node inter-process RPC (§3.1's "inner RPC connections"):
    /// ~40 µs base. Used when predecessor and successor share a worker.
    pub fn local_rpc() -> Self {
        MessageModel::new(SimDuration::from_micros(40), 4e9, 0.25)
    }

    /// Samples the one-way latency of a `bytes`-sized message.
    pub fn latency(&self, bytes: u64, rng: &mut SimRng) -> SimDuration {
        let nominal = self.base + SimDuration::from_secs_f64(bytes as f64 / self.bandwidth);
        if self.jitter == 0.0 {
            nominal
        } else {
            nominal.mul_f64(rng.range_f64(1.0 - self.jitter, 1.0 + self.jitter))
        }
    }

    /// The latency with jitter disabled (useful for analytical tests).
    pub fn nominal_latency(&self, bytes: u64) -> SimDuration {
        self.base + SimDuration::from_secs_f64(bytes as f64 / self.bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_latency_is_base_plus_serialization() {
        let m = MessageModel::new(SimDuration::from_micros(100), 1e6, 0.0);
        // 1000 bytes at 1 MB/s = 1 ms; plus 0.1 ms base.
        assert_eq!(m.nominal_latency(1000), SimDuration::from_micros(1100));
    }

    #[test]
    fn zero_jitter_is_deterministic_without_rng_draw() {
        let m = MessageModel::new(SimDuration::from_micros(100), 1e9, 0.0);
        let mut rng = SimRng::seed_from(1);
        let before = rng.clone();
        assert_eq!(m.latency(0, &mut rng), SimDuration::from_micros(100));
        assert_eq!(rng, before, "no jitter draw should consume randomness");
    }

    #[test]
    fn jitter_bounds_hold() {
        let m = MessageModel::new(SimDuration::from_micros(1000), 1e9, 0.25);
        let mut rng = SimRng::seed_from(2);
        for _ in 0..1000 {
            let l = m.latency(0, &mut rng).as_nanos() as f64;
            assert!((0.75e6..=1.25e6).contains(&l), "latency {l} out of bounds");
        }
    }

    #[test]
    fn local_rpc_is_an_order_of_magnitude_cheaper_than_tcp() {
        let lan = MessageModel::lan_tcp().nominal_latency(256);
        let local = MessageModel::local_rpc().nominal_latency(256);
        assert!(lan.as_nanos() > 5 * local.as_nanos());
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = MessageModel::new(SimDuration::ZERO, 0.0, 0.0);
    }
}
