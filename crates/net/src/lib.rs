//! # faasflow-net
//!
//! The cluster network substrate of the FaaSFlow reproduction.
//!
//! The paper's evaluation (§5.4–§5.5) is dominated by bandwidth contention:
//! many function containers pulling intermediate data through the storage
//! node's NIC, which the authors throttle with `wondershaper` to 25–100 MB/s.
//! This crate models that with a **max-min fair flow network** — the
//! standard fluid approximation of long-lived TCP fair sharing:
//!
//! * [`FlowNet`] — nodes with uplink/downlink capacities; each active
//!   [`Flow`] gets its max-min fair rate via progressive filling,
//!   recomputed whenever a flow starts, finishes, or a NIC is re-throttled.
//! * [`MessageModel`] — latency model for small control-plane messages
//!   (task assignments in MasterSP, state synchronisation in WorkerSP).
//!
//! The crate is simulator-agnostic: it answers "when does the next flow
//! finish?" and the DES world turns that into events.
//!
//! ```
//! use faasflow_net::{FlowNet, NicSpec};
//! use faasflow_sim::{NodeId, SimTime};
//!
//! // Two nodes with 100 MB/s NICs; two flows share node 1's downlink.
//! let mut net: FlowNet<&'static str> = FlowNet::new(vec![
//!     NicSpec::symmetric(100e6),
//!     NicSpec::symmetric(100e6),
//! ]);
//! let now = SimTime::ZERO;
//! net.start_flow(NodeId::new(0), NodeId::new(1), 50_000_000, "a", now);
//! net.start_flow(NodeId::new(0), NodeId::new(1), 50_000_000, "b", now);
//! // Fair share: 50 MB/s each -> both complete at t = 1s (+1ns margin).
//! let t = net.next_completion().unwrap();
//! assert!((t.as_secs_f64() - 1.0).abs() < 1e-6);
//! ```

pub mod fault;
pub mod flow;
pub mod message;

pub use fault::{LinkFaultTable, LinkQuality};
pub use flow::{Flow, FlowId, FlowNet, NicSpec};
pub use message::MessageModel;
