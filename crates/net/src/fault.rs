//! Per-node link degradation for fault injection.
//!
//! During a [`crate::FlowNet`] experiment a worker's link can be degraded
//! for a window: control-plane messages crossing it get lost with some
//! probability and their latency stretches. This module holds the *quality
//! table* — who is degraded and by how much right now; the simulation layer
//! decides what a lost message costs (retransmission with backoff) and
//! separately re-throttles the NIC for bulk flows.

use faasflow_sim::NodeId;
use serde::{Deserialize, Serialize};

/// Link quality of one node: loss probability and latency stretch for
/// control messages entering or leaving it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkQuality {
    /// Probability in `[0, 1)` that a message crossing the link is lost.
    pub loss: f64,
    /// Multiplier (>= 1.0) on message latency across the link.
    pub latency_factor: f64,
}

impl Default for LinkQuality {
    fn default() -> Self {
        LinkQuality {
            loss: 0.0,
            latency_factor: 1.0,
        }
    }
}

impl LinkQuality {
    /// `true` when the link behaves nominally.
    pub fn is_clean(&self) -> bool {
        self.loss == 0.0 && self.latency_factor == 1.0
    }
}

/// Current link quality of every node in the cluster.
///
/// A message from `src` to `dst` crosses both endpoints' links, so its
/// effective quality combines them: losses compose as independent events
/// and the latency stretch is the worse of the two.
#[derive(Debug, Clone)]
pub struct LinkFaultTable {
    links: Vec<LinkQuality>,
}

impl LinkFaultTable {
    /// A table over `nodes` nodes, all links clean.
    pub fn new(nodes: usize) -> Self {
        LinkFaultTable {
            links: vec![LinkQuality::default(); nodes],
        }
    }

    /// Sets one node's link quality (window start).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set(&mut self, node: NodeId, quality: LinkQuality) {
        self.links[node.index()] = quality;
    }

    /// Restores one node's link to nominal (window end).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn clear(&mut self, node: NodeId) {
        self.links[node.index()] = LinkQuality::default();
    }

    /// One node's current link quality.
    pub fn quality(&self, node: NodeId) -> LinkQuality {
        self.links.get(node.index()).copied().unwrap_or_default()
    }

    /// Effective quality of the `src -> dst` path.
    pub fn path(&self, src: NodeId, dst: NodeId) -> LinkQuality {
        let a = self.quality(src);
        if src == dst {
            return a;
        }
        let b = self.quality(dst);
        LinkQuality {
            loss: 1.0 - (1.0 - a.loss) * (1.0 - b.loss),
            latency_factor: a.latency_factor.max(b.latency_factor),
        }
    }

    /// `true` when any node is degraded.
    pub fn any_degraded(&self) -> bool {
        self.links.iter().any(|q| !q.is_clean())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_table_has_clean_paths() {
        let t = LinkFaultTable::new(3);
        assert!(!t.any_degraded());
        let q = t.path(NodeId::new(0), NodeId::new(2));
        assert!(q.is_clean());
    }

    #[test]
    fn path_combines_endpoint_losses() {
        let mut t = LinkFaultTable::new(3);
        t.set(
            NodeId::new(1),
            LinkQuality {
                loss: 0.5,
                latency_factor: 2.0,
            },
        );
        t.set(
            NodeId::new(2),
            LinkQuality {
                loss: 0.5,
                latency_factor: 3.0,
            },
        );
        let q = t.path(NodeId::new(1), NodeId::new(2));
        assert!((q.loss - 0.75).abs() < 1e-12);
        assert_eq!(q.latency_factor, 3.0);
        assert!(t.any_degraded());

        t.clear(NodeId::new(1));
        t.clear(NodeId::new(2));
        assert!(!t.any_degraded());
    }

    #[test]
    fn loopback_path_counts_the_endpoint_once() {
        let mut t = LinkFaultTable::new(2);
        t.set(
            NodeId::new(1),
            LinkQuality {
                loss: 0.5,
                latency_factor: 2.0,
            },
        );
        let q = t.path(NodeId::new(1), NodeId::new(1));
        assert_eq!(q.loss, 0.5);
    }
}
