//! The per-node container manager.
//!
//! A sans-IO state machine for one worker node: warm pools per function,
//! cold starts, a FIFO run queue, keep-alive eviction, idle-LRU eviction
//! under memory pressure, and cgroup-style memory-limit updates for
//! FaaStore's reclamation (§4.3.2: "the container releases to-be-reclaimed
//! memory by setting an updated cgroup memory limit").

use std::collections::{HashMap, VecDeque};

use faasflow_sim::stats::{Counter, Gauge};
use faasflow_sim::{ContainerId, FunctionId, SimRng, SimTime, WorkflowId};

use crate::config::{ContainerConfig, NodeCaps};

/// A warm pool is keyed by workflow and function: containers are never
/// shared across functions (each has its own image/state).
pub type PoolKey = (WorkflowId, FunctionId);

/// How an admitted request starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartKind {
    /// A new container boots first.
    Cold,
    /// An idle warm container is reused.
    Warm,
}

/// The admission handed back when a request gets a container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Admission<T> {
    /// The caller's request token.
    pub token: T,
    /// The container that will run the request.
    pub container: ContainerId,
    /// When the container is ready to execute (cold boot or warm dispatch
    /// complete).
    pub ready_at: SimTime,
    /// Cold or warm.
    pub start: StartKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CtrState {
    /// Executing (or booting toward) a request.
    Busy,
    /// Warm and reusable; recycled at `expires_at`.
    Idle { expires_at: SimTime },
}

#[derive(Debug, Clone)]
struct Container {
    key: PoolKey,
    state: CtrState,
    /// Current cgroup memory limit (shrinks under FaaStore reclamation).
    mem_limit: u64,
    /// Marked when the workflow version was retired while this container
    /// was busy (red-black deployment): recycle on release.
    doomed: bool,
}

#[derive(Debug, Clone)]
struct Waiting<T> {
    key: PoolKey,
    token: T,
}

/// Counters exposed for the evaluation harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContainerStats {
    /// Requests served by a warm container.
    pub warm_starts: Counter,
    /// Requests that booted a new container.
    pub cold_starts: Counter,
    /// Requests that had to queue at least once.
    pub queued: Counter,
    /// Containers recycled by keep-alive expiry.
    pub expired: Counter,
    /// Idle containers evicted early to relieve memory pressure.
    pub pressure_evictions: Counter,
    /// Busy cores right now.
    pub cores_busy: Gauge,
    /// Resident container memory right now.
    pub mem_resident: Gauge,
}

/// The container runtime of one worker node.
///
/// `T` is the caller's request token — typically "function instance *k* of
/// invocation *i*" — returned verbatim inside [`Admission`]s so the engine
/// can resume the right work.
#[derive(Debug)]
pub struct ContainerManager<T> {
    caps: NodeCaps,
    config: ContainerConfig,
    containers: HashMap<ContainerId, Container>,
    /// Idle container ids per pool, most-recently-used last (reuse prefers
    /// the MRU container, matching Docker-level warm pools).
    idle: HashMap<PoolKey, Vec<ContainerId>>,
    /// Containers (busy + idle) per pool, for the per-function limit.
    pool_sizes: HashMap<PoolKey, u32>,
    queue: VecDeque<Waiting<T>>,
    next_id: u32,
    cores_busy: u32,
    mem_resident: u64,
    stats: ContainerStats,
}

impl<T> ContainerManager<T> {
    /// Creates an empty node runtime.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`ContainerConfig::validate`]).
    pub fn new(caps: NodeCaps, config: ContainerConfig) -> Self {
        config.validate().expect("invalid container configuration");
        ContainerManager {
            caps,
            config,
            containers: HashMap::new(),
            idle: HashMap::new(),
            pool_sizes: HashMap::new(),
            queue: VecDeque::new(),
            next_id: 0,
            cores_busy: 0,
            mem_resident: 0,
            stats: ContainerStats::default(),
        }
    }

    /// The node capacity.
    pub fn caps(&self) -> NodeCaps {
        self.caps
    }

    /// Counters for the harness.
    pub fn stats(&self) -> &ContainerStats {
        &self.stats
    }

    /// Containers currently alive (busy + idle).
    pub fn container_count(&self) -> usize {
        self.containers.len()
    }

    /// Requests waiting for a container or core.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Live containers of one pool (the runtime `Scale(v)` feedback input).
    pub fn pool_size(&self, key: PoolKey) -> u32 {
        self.pool_sizes.get(&key).copied().unwrap_or(0)
    }

    /// `true` when `container` exists and is busy. Fault recovery uses
    /// this to distinguish stale admissions (for a container that died in
    /// a crash) from live ones before releasing.
    pub fn is_busy(&self, container: ContainerId) -> bool {
        matches!(
            self.containers.get(&container).map(|c| c.state),
            Some(CtrState::Busy)
        )
    }

    /// Simulates the node crashing: every container (busy and idle) and
    /// every queued request is lost instantly and the resource gauges drop
    /// to zero. Cumulative counters survive (they describe history), and so
    /// does the container-id counter — ids are never reused, so events
    /// addressed to pre-crash containers stay distinguishable after a
    /// restart. Returns `(containers_lost, requests_lost)`.
    pub fn crash(&mut self) -> (usize, usize) {
        let lost = (self.containers.len(), self.queue.len());
        self.containers.clear();
        self.idle.clear();
        self.pool_sizes.clear();
        self.queue.clear();
        self.cores_busy = 0;
        self.mem_resident = 0;
        self.stats.cores_busy.set(0);
        self.stats.mem_resident.set(0);
        lost
    }

    /// Requests a container for `key`. Returns the admission if the node
    /// can serve it now, otherwise queues the token (FIFO) and returns
    /// `None`; a later [`ContainerManager::release`] or eviction hands the
    /// token back inside an [`Admission`].
    pub fn request(
        &mut self,
        key: PoolKey,
        token: T,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Option<Admission<T>> {
        match self.try_admit(key, now, rng) {
            Some((container, ready_at, start)) => Some(Admission {
                token,
                container,
                ready_at,
                start,
            }),
            None => {
                self.stats.queued.inc();
                self.queue.push_back(Waiting { key, token });
                None
            }
        }
    }

    /// Requests a container without queueing: returns the admission if the
    /// node can serve it now, `None` otherwise (the token is **not**
    /// retained). Hedged dispatch uses this — a hedge is opportunistic and
    /// must never add queue pressure to its target node.
    pub fn request_immediate(
        &mut self,
        key: PoolKey,
        token: T,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Option<Admission<T>> {
        self.try_admit(key, now, rng)
            .map(|(container, ready_at, start)| Admission {
                token,
                container,
                ready_at,
                start,
            })
    }

    /// Removes and returns the longest-queued token (admission-control
    /// head drop). `None` when the queue is empty.
    pub fn shed_oldest(&mut self) -> Option<T> {
        self.queue.pop_front().map(|w| w.token)
    }

    /// The queued tokens, oldest first (deadline-aware shedding scans
    /// these to pick a victim).
    pub fn queued_tokens(&self) -> impl Iterator<Item = &T> {
        self.queue.iter().map(|w| &w.token)
    }

    /// Removes the first queued entry whose token satisfies `pred`.
    /// Returns the removed token, or `None` if nothing matched.
    pub fn remove_queued(&mut self, pred: impl Fn(&T) -> bool) -> Option<T> {
        let idx = self.queue.iter().position(|w| pred(&w.token))?;
        self.queue.remove(idx).map(|w| w.token)
    }

    /// Finishes a request: frees the container's core and returns it to the
    /// warm pool (or recycles it if doomed). Queued requests that can now
    /// run are admitted and returned, oldest first.
    ///
    /// # Panics
    ///
    /// Panics if `container` is unknown or idle — releasing twice is a
    /// caller bug.
    pub fn release(
        &mut self,
        container: ContainerId,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Vec<Admission<T>> {
        let ctr = self
            .containers
            .get_mut(&container)
            .expect("released container must exist");
        assert_eq!(ctr.state, CtrState::Busy, "released container must be busy");
        self.cores_busy -= self.config.container_cores;
        self.stats
            .cores_busy
            .sub(self.config.container_cores as u64);
        if ctr.doomed {
            let key = ctr.key;
            let mem = ctr.mem_limit;
            self.containers.remove(&container);
            self.mem_resident -= mem;
            self.stats.mem_resident.sub(mem);
            *self.pool_sizes.get_mut(&key).expect("pool exists") -= 1;
        } else {
            ctr.state = CtrState::Idle {
                expires_at: now + self.config.keep_alive,
            };
            let key = ctr.key;
            self.idle.entry(key).or_default().push(container);
        }
        self.drain_queue(now, rng)
    }

    /// The earliest keep-alive expiry among idle containers, if any.
    pub fn next_expiry(&self) -> Option<SimTime> {
        self.containers
            .values()
            .filter_map(|c| match c.state {
                CtrState::Idle { expires_at } => Some(expires_at),
                CtrState::Busy => None,
            })
            .min()
    }

    /// Recycles idle containers whose keep-alive expired by `now`, then
    /// admits any queued requests the freed memory allows.
    pub fn evict_expired(&mut self, now: SimTime, rng: &mut SimRng) -> Vec<Admission<T>> {
        let expired: Vec<ContainerId> = self
            .containers
            .iter()
            .filter(|(_, c)| matches!(c.state, CtrState::Idle { expires_at } if expires_at <= now))
            .map(|(&id, _)| id)
            .collect();
        let mut expired = expired;
        expired.sort_unstable();
        for id in expired {
            self.remove_idle(id);
            self.stats.expired.inc();
        }
        self.drain_queue(now, rng)
    }

    /// Retires every container of a workflow version (red-black deployment,
    /// §4.2.2): idle containers are recycled immediately, busy ones are
    /// doomed and recycled when they release.
    pub fn retire_workflow(
        &mut self,
        wf: WorkflowId,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Vec<Admission<T>> {
        let ids: Vec<ContainerId> = self
            .containers
            .iter()
            .filter(|(_, c)| c.key.0 == wf)
            .map(|(&id, _)| id)
            .collect();
        let mut ids = ids;
        ids.sort_unstable();
        for id in ids {
            let state = self.containers[&id].state;
            match state {
                CtrState::Idle { .. } => self.remove_idle(id),
                CtrState::Busy => {
                    self.containers
                        .get_mut(&id)
                        .expect("container exists")
                        .doomed = true
                }
            }
        }
        self.drain_queue(now, rng)
    }

    /// Updates a container's cgroup memory limit (FaaStore reclamation).
    /// Shrinking frees node memory; growing requires head-room.
    ///
    /// # Errors
    ///
    /// Returns `Err` when growing past the node's free memory.
    ///
    /// # Panics
    ///
    /// Panics if `container` is unknown.
    pub fn set_memory_limit(
        &mut self,
        container: ContainerId,
        new_limit: u64,
    ) -> Result<(), String> {
        let ctr = self
            .containers
            .get_mut(&container)
            .expect("container must exist to re-limit");
        let old = ctr.mem_limit;
        if new_limit > old {
            let grow = new_limit - old;
            if self.mem_resident + grow > self.caps.mem {
                return Err(format!(
                    "cannot grow container by {grow} bytes: node memory exhausted"
                ));
            }
            ctr.mem_limit = new_limit;
            self.mem_resident += grow;
            self.stats.mem_resident.add(grow);
        } else {
            let shrink = old - new_limit;
            ctr.mem_limit = new_limit;
            self.mem_resident -= shrink;
            self.stats.mem_resident.sub(shrink);
        }
        Ok(())
    }

    /// Current memory limit of a container.
    ///
    /// # Panics
    ///
    /// Panics if `container` is unknown.
    pub fn memory_limit(&self, container: ContainerId) -> u64 {
        self.containers[&container].mem_limit
    }

    // ------------------------------------------------------------------

    fn remove_idle(&mut self, id: ContainerId) {
        let ctr = self.containers.remove(&id).expect("idle container exists");
        debug_assert!(matches!(ctr.state, CtrState::Idle { .. }));
        self.mem_resident -= ctr.mem_limit;
        self.stats.mem_resident.sub(ctr.mem_limit);
        *self.pool_sizes.get_mut(&ctr.key).expect("pool exists") -= 1;
        if let Some(v) = self.idle.get_mut(&ctr.key) {
            v.retain(|&c| c != id);
        }
    }

    /// Tries to start a request right now: warm reuse, else cold start
    /// (evicting idle LRU containers under memory pressure), else `None`.
    fn try_admit(
        &mut self,
        key: PoolKey,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Option<(ContainerId, SimTime, StartKind)> {
        if self.cores_busy + self.config.container_cores > self.caps.cores {
            return None; // no core to run on
        }
        // Warm reuse: most-recently-used idle container of this pool.
        if let Some(id) = self.idle.get_mut(&key).and_then(Vec::pop) {
            let ctr = self.containers.get_mut(&id).expect("idle container exists");
            ctr.state = CtrState::Busy;
            self.cores_busy += self.config.container_cores;
            self.stats
                .cores_busy
                .add(self.config.container_cores as u64);
            self.stats.warm_starts.inc();
            return Some((id, now + self.config.warm_start, StartKind::Warm));
        }
        // Cold start: respect the per-function container limit...
        if self.pool_size(key) >= self.config.per_function_limit {
            return None;
        }
        // ...and node memory, evicting idle LRU containers if needed.
        while self.mem_resident + self.config.container_mem > self.caps.mem {
            let victim = self
                .containers
                .iter()
                .filter_map(|(&id, c)| match c.state {
                    CtrState::Idle { expires_at } => Some((expires_at, id)),
                    CtrState::Busy => None,
                })
                .min();
            match victim {
                Some((_, id)) => {
                    self.remove_idle(id);
                    self.stats.pressure_evictions.inc();
                }
                None => return None, // everything busy; wait
            }
        }
        let id = ContainerId::new(self.next_id);
        self.next_id += 1;
        self.containers.insert(
            id,
            Container {
                key,
                state: CtrState::Busy,
                mem_limit: self.config.container_mem,
                doomed: false,
            },
        );
        *self.pool_sizes.entry(key).or_insert(0) += 1;
        self.mem_resident += self.config.container_mem;
        self.stats.mem_resident.add(self.config.container_mem);
        self.cores_busy += self.config.container_cores;
        self.stats
            .cores_busy
            .add(self.config.container_cores as u64);
        self.stats.cold_starts.inc();
        let jitter = self.config.cold_start_jitter;
        let boot = if jitter == 0.0 {
            self.config.cold_start_mean
        } else {
            self.config
                .cold_start_mean
                .mul_f64(rng.range_f64(1.0 - jitter, 1.0 + jitter))
        };
        Some((id, now + boot, StartKind::Cold))
    }

    /// Admits every queued request that can now run, preserving FIFO order
    /// among the rest.
    fn drain_queue(&mut self, now: SimTime, rng: &mut SimRng) -> Vec<Admission<T>> {
        let mut admitted = Vec::new();
        let mut still_waiting = VecDeque::with_capacity(self.queue.len());
        while let Some(w) = self.queue.pop_front() {
            match self.try_admit(w.key, now, rng) {
                Some((container, ready_at, start)) => admitted.push(Admission {
                    token: w.token,
                    container,
                    ready_at,
                    start,
                }),
                None => still_waiting.push_back(w),
            }
        }
        self.queue = still_waiting;
        admitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasflow_sim::SimDuration;

    fn key(f: u32) -> PoolKey {
        (WorkflowId::new(0), FunctionId::new(f))
    }

    fn mgr(cores: u32, mem_containers: u64) -> ContainerManager<u32> {
        let cfg = ContainerConfig {
            cold_start_jitter: 0.0,
            ..ContainerConfig::default()
        };
        ContainerManager::new(
            NodeCaps {
                cores,
                mem: mem_containers * cfg.container_mem,
            },
            cfg,
        )
    }

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn first_request_cold_starts() {
        let mut m = mgr(8, 128);
        let mut rng = SimRng::seed_from(1);
        let adm = m.request(key(0), 1, t(0), &mut rng).expect("admitted");
        assert_eq!(adm.start, StartKind::Cold);
        assert_eq!(adm.ready_at, t(0) + SimDuration::from_millis(500));
        assert_eq!(m.container_count(), 1);
    }

    #[test]
    fn request_immediate_never_queues() {
        let mut m = mgr(1, 128);
        let mut rng = SimRng::seed_from(1);
        m.request(key(0), 1, t(0), &mut rng).expect("admitted");
        assert!(m.request_immediate(key(0), 2, t(0), &mut rng).is_none());
        assert_eq!(m.queue_len(), 0, "rejected token is not retained");
    }

    #[test]
    fn shed_oldest_pops_the_queue_head() {
        let mut m = mgr(1, 128);
        let mut rng = SimRng::seed_from(1);
        m.request(key(0), 1, t(0), &mut rng).expect("admitted");
        assert!(m.request(key(0), 2, t(0), &mut rng).is_none());
        assert!(m.request(key(0), 3, t(0), &mut rng).is_none());
        assert_eq!(m.shed_oldest(), Some(2));
        assert_eq!(m.queue_len(), 1);
        let queued: Vec<u32> = m.queued_tokens().copied().collect();
        assert_eq!(queued, vec![3]);
    }

    #[test]
    fn remove_queued_picks_by_predicate() {
        let mut m = mgr(1, 128);
        let mut rng = SimRng::seed_from(1);
        m.request(key(0), 1, t(0), &mut rng).expect("admitted");
        assert!(m.request(key(0), 2, t(0), &mut rng).is_none());
        assert!(m.request(key(0), 3, t(0), &mut rng).is_none());
        assert_eq!(m.remove_queued(|&tok| tok == 3), Some(3));
        assert_eq!(m.remove_queued(|&tok| tok == 3), None);
        assert_eq!(m.queue_len(), 1);
    }

    #[test]
    fn release_then_request_reuses_warm() {
        let mut m = mgr(8, 128);
        let mut rng = SimRng::seed_from(1);
        let adm = m.request(key(0), 1, t(0), &mut rng).expect("admitted");
        assert!(m.release(adm.container, t(1), &mut rng).is_empty());
        let warm = m.request(key(0), 2, t(2), &mut rng).expect("admitted");
        assert_eq!(warm.start, StartKind::Warm);
        assert_eq!(warm.container, adm.container);
        assert_eq!(m.stats().warm_starts.get(), 1);
    }

    #[test]
    fn crash_loses_everything_but_history_and_ids() {
        let mut m = mgr(2, 128);
        let mut rng = SimRng::seed_from(1);
        let a = m.request(key(0), 1, t(0), &mut rng).expect("admitted");
        let b = m.request(key(0), 2, t(0), &mut rng).expect("admitted");
        assert!(m.request(key(1), 3, t(0), &mut rng).is_none(), "queues");
        assert!(m.is_busy(a.container));

        let (containers, queued) = m.crash();
        assert_eq!((containers, queued), (2, 1));
        assert_eq!(m.container_count(), 0);
        assert_eq!(m.queue_len(), 0);
        assert!(!m.is_busy(a.container));
        assert_eq!(m.stats().cores_busy.get(), 0);
        assert_eq!(m.stats().mem_resident.get(), 0);
        assert_eq!(m.stats().cold_starts.get(), 2, "history survives");

        // Post-restart containers never reuse a pre-crash id.
        let c = m.request(key(0), 4, t(2), &mut rng).expect("admitted");
        assert_ne!(c.container, a.container);
        assert_ne!(c.container, b.container);
    }

    #[test]
    fn containers_are_not_shared_across_functions() {
        let mut m = mgr(8, 128);
        let mut rng = SimRng::seed_from(1);
        let adm = m.request(key(0), 1, t(0), &mut rng).expect("admitted");
        m.release(adm.container, t(1), &mut rng);
        let other = m.request(key(1), 2, t(2), &mut rng).expect("admitted");
        assert_eq!(other.start, StartKind::Cold);
        assert_ne!(other.container, adm.container);
    }

    #[test]
    fn core_exhaustion_queues_fifo() {
        let mut m = mgr(2, 128);
        let mut rng = SimRng::seed_from(1);
        let a = m.request(key(0), 1, t(0), &mut rng).expect("core 1");
        let _b = m.request(key(0), 2, t(0), &mut rng).expect("core 2");
        assert!(m.request(key(0), 3, t(0), &mut rng).is_none());
        assert!(m.request(key(1), 4, t(0), &mut rng).is_none());
        assert_eq!(m.queue_len(), 2);
        // Releasing one core admits the oldest waiter first.
        let admitted = m.release(a.container, t(1), &mut rng);
        assert_eq!(admitted.len(), 1);
        assert_eq!(admitted[0].token, 3);
        assert_eq!(admitted[0].start, StartKind::Warm, "reuses a's container");
        assert_eq!(m.queue_len(), 1);
    }

    #[test]
    fn per_function_limit_blocks_scaling() {
        let cfg = ContainerConfig {
            per_function_limit: 2,
            cold_start_jitter: 0.0,
            ..ContainerConfig::default()
        };
        let mut m: ContainerManager<u32> = ContainerManager::new(
            NodeCaps {
                cores: 8,
                mem: 32 << 30,
            },
            cfg,
        );
        let mut rng = SimRng::seed_from(1);
        assert!(m.request(key(0), 1, t(0), &mut rng).is_some());
        assert!(m.request(key(0), 2, t(0), &mut rng).is_some());
        assert!(
            m.request(key(0), 3, t(0), &mut rng).is_none(),
            "third container of the same function is over the limit"
        );
        // A different function still scales.
        assert!(m.request(key(1), 4, t(0), &mut rng).is_some());
    }

    #[test]
    fn keep_alive_expires_idle_containers() {
        let mut m = mgr(8, 128);
        let mut rng = SimRng::seed_from(1);
        let adm = m.request(key(0), 1, t(0), &mut rng).expect("admitted");
        m.release(adm.container, t(1), &mut rng);
        assert_eq!(m.next_expiry(), Some(t(601)));
        assert!(m.evict_expired(t(600), &mut rng).is_empty());
        assert_eq!(m.container_count(), 1, "not yet expired");
        m.evict_expired(t(601), &mut rng);
        assert_eq!(m.container_count(), 0);
        assert_eq!(m.stats().expired.get(), 1);
    }

    #[test]
    fn memory_pressure_evicts_idle_lru() {
        // Room for exactly 2 containers.
        let mut m = mgr(8, 2);
        let mut rng = SimRng::seed_from(1);
        let a = m.request(key(0), 1, t(0), &mut rng).expect("a");
        m.release(a.container, t(1), &mut rng);
        let b = m.request(key(1), 2, t(2), &mut rng).expect("b");
        m.release(b.container, t(3), &mut rng);
        // A third function needs memory: the idle container with the
        // earliest expiry (a, idle since t=1) must be evicted.
        let c = m.request(key(2), 3, t(4), &mut rng).expect("c admitted");
        assert_eq!(c.start, StartKind::Cold);
        assert_eq!(m.stats().pressure_evictions.get(), 1);
        assert_eq!(m.pool_size(key(0)), 0, "a's pool was evicted");
        assert_eq!(m.pool_size(key(1)), 1, "b survives");
    }

    #[test]
    fn retire_workflow_recycles_idle_and_dooms_busy() {
        let mut m = mgr(8, 128);
        let mut rng = SimRng::seed_from(1);
        let idle = m.request(key(0), 1, t(0), &mut rng).expect("idle-to-be");
        m.release(idle.container, t(1), &mut rng);
        let busy = m.request(key(1), 2, t(2), &mut rng).expect("busy");
        m.retire_workflow(WorkflowId::new(0), t(3), &mut rng);
        assert_eq!(m.container_count(), 1, "idle recycled, busy doomed");
        m.release(busy.container, t(4), &mut rng);
        assert_eq!(
            m.container_count(),
            0,
            "doomed container recycled on release"
        );
    }

    #[test]
    fn memory_limit_shrink_and_grow() {
        let mut m = mgr(8, 128);
        let mut rng = SimRng::seed_from(1);
        let adm = m.request(key(0), 1, t(0), &mut rng).expect("admitted");
        let before = m.stats().mem_resident.get();
        m.set_memory_limit(adm.container, 128 << 20)
            .expect("shrink");
        assert_eq!(m.stats().mem_resident.get(), before - (128 << 20));
        assert_eq!(m.memory_limit(adm.container), 128 << 20);
        m.set_memory_limit(adm.container, 256 << 20)
            .expect("grow back");
        assert_eq!(m.stats().mem_resident.get(), before);
    }

    #[test]
    fn grow_past_node_memory_fails() {
        let mut m = mgr(8, 1);
        let mut rng = SimRng::seed_from(1);
        let adm = m.request(key(0), 1, t(0), &mut rng).expect("admitted");
        let res = m.set_memory_limit(adm.container, 1 << 40);
        assert!(res.is_err());
    }

    #[test]
    #[should_panic(expected = "must be busy")]
    fn double_release_panics() {
        let mut m = mgr(8, 128);
        let mut rng = SimRng::seed_from(1);
        let adm = m.request(key(0), 1, t(0), &mut rng).expect("admitted");
        m.release(adm.container, t(1), &mut rng);
        m.release(adm.container, t(2), &mut rng);
    }

    #[test]
    fn queue_skips_blocked_head_for_admissible_later_requests() {
        let cfg = ContainerConfig {
            per_function_limit: 1,
            cold_start_jitter: 0.0,
            ..ContainerConfig::default()
        };
        let mut m: ContainerManager<u32> = ContainerManager::new(
            NodeCaps {
                cores: 2,
                mem: 32 << 30,
            },
            cfg,
        );
        let mut rng = SimRng::seed_from(1);
        let a = m.request(key(0), 1, t(0), &mut rng).expect("a runs");
        let b = m.request(key(1), 2, t(0), &mut rng).expect("b runs");
        // fn0 again: blocked by per-function limit even after a core frees.
        assert!(m.request(key(0), 3, t(0), &mut rng).is_none());
        // fn2: only blocked by cores.
        assert!(m.request(key(2), 4, t(0), &mut rng).is_none());
        // Releasing b frees a core; head (fn0) is still limit-blocked but
        // fn2 must be admitted.
        let admitted = m.release(b.container, t(1), &mut rng);
        let tokens: Vec<u32> = admitted.iter().map(|a| a.token).collect();
        assert_eq!(tokens, vec![4]);
        // Releasing a lets the fn0 waiter reuse a's container.
        let admitted = m.release(a.container, t(2), &mut rng);
        let tokens: Vec<u32> = admitted.iter().map(|a| a.token).collect();
        assert_eq!(tokens, vec![3]);
    }
}
