//! Container runtime configuration (Table 3 of the paper).

use faasflow_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Per-node capacity: the worker hardware of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeCaps {
    /// CPU cores available for containers.
    pub cores: u32,
    /// Memory available for containers, bytes.
    pub mem: u64,
}

impl Default for NodeCaps {
    /// 8 cores, 32 GB — one `ecs.g7.2xlarge` worker.
    fn default() -> Self {
        NodeCaps {
            cores: 8,
            mem: 32 << 30,
        }
    }
}

/// Container lifecycle parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContainerConfig {
    /// Mean cold-start latency (image pull is warm; this is create + boot
    /// of a Python runtime container, a few hundred milliseconds on the
    /// paper's Docker 20.10 setup).
    pub cold_start_mean: SimDuration,
    /// Multiplicative jitter on the cold start: samples are uniform in
    /// `[1-j, 1+j] * mean`.
    pub cold_start_jitter: f64,
    /// Fixed cost of dispatching onto a warm container.
    pub warm_start: SimDuration,
    /// Idle lifetime before a container is recycled ("Lifetime: 600s").
    pub keep_alive: SimDuration,
    /// Maximum containers per function per node ("Function container
    /// limit: 10 for each function on each node").
    pub per_function_limit: u32,
    /// Provisioned memory per container ("1-core with 256MB").
    pub container_mem: u64,
    /// Cores per running container.
    pub container_cores: u32,
}

impl Default for ContainerConfig {
    fn default() -> Self {
        ContainerConfig {
            cold_start_mean: SimDuration::from_millis(500),
            cold_start_jitter: 0.2,
            warm_start: SimDuration::from_millis(3),
            keep_alive: SimDuration::from_secs(600),
            per_function_limit: 10,
            container_mem: 256 << 20,
            container_cores: 1,
        }
    }
}

impl ContainerConfig {
    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when a field is out of range.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.cold_start_jitter) {
            return Err(format!(
                "cold_start_jitter must be in [0,1), got {}",
                self.cold_start_jitter
            ));
        }
        if self.per_function_limit == 0 {
            return Err("per_function_limit must be positive".to_string());
        }
        if self.container_cores == 0 {
            return Err("container_cores must be positive".to_string());
        }
        if self.container_mem == 0 {
            return Err("container_mem must be positive".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_3() {
        let caps = NodeCaps::default();
        assert_eq!(caps.cores, 8);
        assert_eq!(caps.mem, 32 << 30);
        let cfg = ContainerConfig::default();
        assert_eq!(cfg.per_function_limit, 10);
        assert_eq!(cfg.container_mem, 256 << 20);
        assert_eq!(cfg.keep_alive, SimDuration::from_secs(600));
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_fields() {
        let bad = [
            ContainerConfig {
                cold_start_jitter: 1.5,
                ..ContainerConfig::default()
            },
            ContainerConfig {
                per_function_limit: 0,
                ..ContainerConfig::default()
            },
            ContainerConfig {
                container_cores: 0,
                ..ContainerConfig::default()
            },
            ContainerConfig {
                container_mem: 0,
                ..ContainerConfig::default()
            },
        ];
        for cfg in bad {
            assert!(cfg.validate().is_err(), "{cfg:?}");
        }
    }
}
