//! # faasflow-container
//!
//! The container runtime substrate of the FaaSFlow reproduction.
//!
//! The paper's testbed runs functions in Docker containers with the limits
//! of Table 3: 1 core / 256 MB per container, a 600 s keep-alive lifetime,
//! and at most 10 containers per function per node, on 8-core / 32 GB
//! workers. Those knobs drive several headline effects — warm reuse versus
//! cold start (§2.3's measurement methodology), auto-scaling
//! (`Scale(v)`, §4.1.2), and the memory over-provisioning FaaStore
//! reclaims (§4.3).
//!
//! [`ContainerManager`] models one worker node's runtime as a sans-IO state
//! machine: callers pass the current [`faasflow_sim::SimTime`] in and get admission
//! decisions out; no clocks or threads inside. Requests that cannot run
//! immediately are queued exactly like the paper's "worker engine pushes
//! the task to a queue for containers to capture" (§4.2.2).
//!
//! ```
//! use faasflow_container::{ContainerConfig, ContainerManager, NodeCaps, StartKind};
//! use faasflow_sim::{SimRng, SimTime, WorkflowId, FunctionId};
//!
//! let mut mgr: ContainerManager<u32> = ContainerManager::new(
//!     NodeCaps::default(),
//!     ContainerConfig::default(),
//! );
//! let mut rng = SimRng::seed_from(1);
//! let key = (WorkflowId::new(0), FunctionId::new(0));
//! let adm = mgr
//!     .request(key, 1, SimTime::ZERO, &mut rng)
//!     .expect("an empty node admits immediately");
//! assert_eq!(adm.start, StartKind::Cold); // first ever invocation
//! ```

pub mod config;
pub mod manager;

pub use config::{ContainerConfig, NodeCaps};
pub use manager::{Admission, ContainerManager, ContainerStats, PoolKey, StartKind};
