//! Container-runtime scenarios combining multiple mechanisms: keep-alive
//! under load, memory pressure against multiple pools, red-black retirement
//! racing the run queue, and reclamation interacting with eviction.

use faasflow_container::{ContainerConfig, ContainerManager, NodeCaps, StartKind};
use faasflow_sim::{FunctionId, SimDuration, SimRng, SimTime, WorkflowId};

fn key(wf: u32, f: u32) -> (WorkflowId, FunctionId) {
    (WorkflowId::new(wf), FunctionId::new(f))
}

fn t(secs: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(secs)
}

fn quiet_config() -> ContainerConfig {
    ContainerConfig {
        cold_start_jitter: 0.0,
        ..ContainerConfig::default()
    }
}

#[test]
fn steady_traffic_keeps_containers_warm_forever() {
    // Requests every 100 s against a 600 s keep-alive: the same container
    // serves every request and never expires.
    let mut m: ContainerManager<u32> = ContainerManager::new(NodeCaps::default(), quiet_config());
    let mut rng = SimRng::seed_from(1);
    let first = m.request(key(0, 0), 0, t(0), &mut rng).expect("admitted");
    m.release(first.container, t(1), &mut rng);
    for i in 1..20u32 {
        let now = t(100 * u64::from(i));
        // Fire any due expiry first, as the cluster's timer would.
        m.evict_expired(now, &mut rng);
        let adm = m.request(key(0, 0), i, now, &mut rng).expect("admitted");
        assert_eq!(adm.start, StartKind::Warm, "request {i} must reuse");
        assert_eq!(adm.container, first.container);
        m.release(adm.container, now + SimDuration::from_secs(1), &mut rng);
    }
    assert_eq!(m.stats().cold_starts.get(), 1);
    assert_eq!(m.stats().expired.get(), 0);
}

#[test]
fn idle_gap_past_keepalive_forces_a_fresh_boot() {
    let mut m: ContainerManager<u32> = ContainerManager::new(NodeCaps::default(), quiet_config());
    let mut rng = SimRng::seed_from(1);
    let a = m.request(key(0, 0), 0, t(0), &mut rng).expect("admitted");
    m.release(a.container, t(1), &mut rng);
    // 601 s later the expiry fires before the next request.
    m.evict_expired(t(700), &mut rng);
    let b = m.request(key(0, 0), 1, t(700), &mut rng).expect("admitted");
    assert_eq!(b.start, StartKind::Cold);
    assert_ne!(b.container, a.container);
}

#[test]
fn pressure_eviction_prefers_the_stalest_pool() {
    // Room for 3 containers; three pools made idle at different times.
    let cfg = quiet_config();
    let mut m: ContainerManager<u32> = ContainerManager::new(
        NodeCaps {
            cores: 8,
            mem: 3 * cfg.container_mem,
        },
        cfg,
    );
    let mut rng = SimRng::seed_from(1);
    let mut containers = Vec::new();
    for (i, idle_at) in [(0u32, 10u64), (1, 5), (2, 20)] {
        let adm = m.request(key(0, i), i, t(1), &mut rng).expect("admitted");
        m.release(adm.container, t(idle_at), &mut rng);
        containers.push(adm.container);
    }
    // A fourth pool needs memory: pool 1 (idle since t=5) is the LRU.
    m.request(key(0, 3), 9, t(30), &mut rng).expect("admitted");
    assert_eq!(m.pool_size(key(0, 1)), 0, "stalest pool evicted");
    assert_eq!(m.pool_size(key(0, 0)), 1);
    assert_eq!(m.pool_size(key(0, 2)), 1);
}

#[test]
fn retirement_drains_through_the_queue() {
    // One core: one busy container of wf0 plus queued work of wf1.
    let cfg = quiet_config();
    let mut m: ContainerManager<u32> = ContainerManager::new(
        NodeCaps {
            cores: 1,
            mem: 32 << 30,
        },
        cfg,
    );
    let mut rng = SimRng::seed_from(1);
    let busy = m.request(key(0, 0), 1, t(0), &mut rng).expect("runs");
    assert!(m.request(key(1, 0), 2, t(0), &mut rng).is_none(), "queued");
    // Retire workflow 0 mid-flight (red-black): the busy container is
    // doomed but keeps its core until release.
    let admitted = m.retire_workflow(WorkflowId::new(0), t(1), &mut rng);
    assert!(admitted.is_empty(), "no core freed yet");
    // Releasing recycles the doomed container AND admits the waiter.
    let admitted = m.release(busy.container, t(2), &mut rng);
    assert_eq!(admitted.len(), 1);
    assert_eq!(admitted[0].token, 2);
    assert_eq!(m.pool_size(key(0, 0)), 0, "retired pool fully recycled");
}

#[test]
fn reclaimed_memory_admits_more_containers() {
    // Node fits 2 provisioned containers; shrinking their limits to half
    // makes room for 2 more (the FaaStore §4.3.2 effect on density).
    let cfg = quiet_config();
    let mut m: ContainerManager<u32> = ContainerManager::new(
        NodeCaps {
            cores: 8,
            mem: 2 * cfg.container_mem,
        },
        cfg,
    );
    let mut rng = SimRng::seed_from(1);
    let a = m.request(key(0, 0), 1, t(0), &mut rng).expect("a");
    let b = m.request(key(0, 1), 2, t(0), &mut rng).expect("b");
    assert!(
        m.request(key(0, 2), 3, t(0), &mut rng).is_none(),
        "memory full at provisioned sizes"
    );
    m.set_memory_limit(a.container, cfg.container_mem / 2)
        .expect("shrink");
    m.set_memory_limit(b.container, cfg.container_mem / 2)
        .expect("shrink");
    // The queued request plus one more now fit.
    let admitted = m.release(a.container, t(1), &mut rng);
    assert_eq!(admitted.len(), 1, "queued request admitted after reclaim");
}

#[test]
fn stats_reconcile_across_a_busy_session() {
    let mut m: ContainerManager<u32> = ContainerManager::new(NodeCaps::default(), quiet_config());
    let mut rng = SimRng::seed_from(9);
    let mut live = Vec::new();
    let mut token = 0u32;
    for round in 0..50u64 {
        let now = t(round * 2);
        for f in 0..4u32 {
            token += 1;
            if let Some(adm) = m.request(key(0, f), token, now, &mut rng) {
                live.push(adm.container);
            }
        }
        // Release everything each round; releases can admit queued work,
        // which is released in a second wave.
        let first_wave = std::mem::take(&mut live);
        for c in first_wave {
            for adm in m.release(c, now + SimDuration::from_secs(1), &mut rng) {
                live.push(adm.container);
            }
        }
        while let Some(c) = live.pop() {
            for adm in m.release(c, now + SimDuration::from_millis(1500), &mut rng) {
                live.push(adm.container);
            }
        }
    }
    let stats = m.stats();
    assert_eq!(
        stats.cold_starts.get() + stats.warm_starts.get(),
        200,
        "every request eventually ran"
    );
    assert_eq!(stats.cores_busy.get(), 0, "all cores returned");
    assert_eq!(m.queue_len(), 0);
}
