//! Scheduler error type.

use std::fmt;

/// An error raised while partitioning or placing a workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// No worker nodes were supplied.
    NoWorkers,
    /// Even singleton groups cannot fit on the available workers.
    InsufficientCapacity {
        /// Required container capacity of the unplaceable group.
        required: u32,
        /// Largest free capacity across workers.
        largest_free: u32,
    },
    /// The runtime metrics don't match the DAG (stale feedback).
    MetricsMismatch {
        /// Nodes in the DAG.
        expected: usize,
        /// Entries supplied.
        actual: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NoWorkers => write!(f, "no worker nodes available"),
            ScheduleError::InsufficientCapacity {
                required,
                largest_free,
            } => write!(
                f,
                "group needs {required} containers but the largest free worker has {largest_free}"
            ),
            ScheduleError::MetricsMismatch { expected, actual } => write!(
                f,
                "runtime metrics cover {actual} nodes but the DAG has {expected}"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase() {
        assert!(ScheduleError::NoWorkers
            .to_string()
            .starts_with("no worker"));
        let e = ScheduleError::InsufficientCapacity {
            required: 5,
            largest_free: 3,
        };
        assert!(e.to_string().contains("5"));
    }
}
