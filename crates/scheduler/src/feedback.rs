//! Runtime feedback metrics for partition iterations (§4.1.2).
//!
//! "FaaSFlow introduces `Scale(v_i)` for each function node, which
//! represents the average number of scaled instances of a function node
//! during partition iteration. This metric is updated based on the runtime
//! feedback from the last iteration" — and likewise `Map(v_i)` for foreach
//! executor maps and the observed 99-percentile edge latencies that become
//! DAG edge weights.

use faasflow_sim::stats::Histogram;
use faasflow_sim::{FunctionId, SimDuration};
use faasflow_wdl::{EdgeId, WorkflowDag};
use serde::{Deserialize, Serialize};

/// Live load snapshot of one worker, fed back from the cluster into
/// placement decisions alongside the per-node [`RuntimeMetrics`].
///
/// Where `Scale(v)`/`Map(v)` describe one workflow's own history, this
/// describes the *cluster* the workflow is being placed into: instances
/// other workflows already queued or run on each worker, memory pressure,
/// and the worker's recently observed tail latency. The partitioner uses it
/// to score otherwise-equal placement candidates; the cluster additionally
/// subtracts [`WorkerLoad::busy`] from nominal capacity so bin-packing sees
/// residual — not nominal — room.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerLoad {
    /// Admissions waiting in the worker's queue for a container slot.
    pub queued: u32,
    /// Instances currently booting or running on the worker.
    pub running: u32,
    /// Bytes resident in the worker's in-memory store.
    pub mem_used_bytes: u64,
    /// Recently observed p99 end-to-end latency (milliseconds, rounded) of
    /// invocations whose placement touched this worker; 0 until enough
    /// samples exist.
    pub recent_p99_ms: u32,
}

impl WorkerLoad {
    /// Container-units of live work: queued plus running instances.
    pub fn busy(&self) -> u32 {
        self.queued.saturating_add(self.running)
    }
}

/// The per-node metrics one partition iteration runs under.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeMetrics {
    /// `Scale(v)`: average concurrent instances per function node
    /// (0 for virtual nodes).
    pub scale: Vec<f64>,
    /// `Map(v)`: average executor map (1 except foreach).
    pub map: Vec<f64>,
}

impl RuntimeMetrics {
    /// The first-iteration defaults: `Scale = parallelism` for functions
    /// (a foreach node needs `fanout` concurrent containers even before any
    /// runtime history exists), `Map = parallelism` from the definition.
    pub fn initial(dag: &WorkflowDag) -> Self {
        let n = dag.node_count();
        let mut scale = vec![0.0; n];
        let mut map = vec![1.0; n];
        for node in dag.nodes() {
            if node.kind.is_function() {
                scale[node.id.index()] = f64::from(node.parallelism);
                map[node.id.index()] = f64::from(node.parallelism);
            }
        }
        RuntimeMetrics { scale, map }
    }
}

/// Accumulates runtime observations between partition iterations.
///
/// The engines feed it; [`FeedbackCollector::finish`] produces the next
/// iteration's [`RuntimeMetrics`] and writes observed p99 latencies back
/// into the DAG's edge weights.
#[derive(Debug, Clone)]
pub struct FeedbackCollector {
    node_count: usize,
    /// Sum and count of concurrent-instance samples per node.
    scale_sum: Vec<f64>,
    scale_cnt: Vec<u64>,
    /// Sum and count of executor-map samples per node.
    map_sum: Vec<f64>,
    map_cnt: Vec<u64>,
    /// Observed transfer latency per control edge.
    edge_latency: Vec<Histogram>,
}

impl FeedbackCollector {
    /// A collector sized for one DAG.
    pub fn new(dag: &WorkflowDag) -> Self {
        FeedbackCollector {
            node_count: dag.node_count(),
            scale_sum: vec![0.0; dag.node_count()],
            scale_cnt: vec![0; dag.node_count()],
            map_sum: vec![0.0; dag.node_count()],
            map_cnt: vec![0; dag.node_count()],
            edge_latency: vec![Histogram::new(); dag.edges().len()],
        }
    }

    /// Records the concurrent-instance count observed for a node.
    pub fn observe_scale(&mut self, node: FunctionId, instances: u32) {
        self.scale_sum[node.index()] += f64::from(instances);
        self.scale_cnt[node.index()] += 1;
    }

    /// Records the executor map observed for a node (foreach fan-out).
    pub fn observe_map(&mut self, node: FunctionId, executors: u32) {
        self.map_sum[node.index()] += f64::from(executors);
        self.map_cnt[node.index()] += 1;
    }

    /// Records one transfer latency along a control edge.
    pub fn observe_edge(&mut self, edge: EdgeId, latency: SimDuration) {
        self.edge_latency[edge.index()].record_duration(latency);
    }

    /// Number of edge-latency samples collected so far.
    pub fn edge_samples(&self) -> usize {
        self.edge_latency.iter().map(Histogram::len).sum()
    }

    /// Produces the next iteration's metrics and updates the DAG's edge
    /// weights with observed p99 latencies (edges without samples keep
    /// their current weight). Falls back to the previous metrics where no
    /// sample exists.
    pub fn finish(mut self, dag: &mut WorkflowDag, previous: &RuntimeMetrics) -> RuntimeMetrics {
        assert_eq!(
            self.node_count,
            dag.node_count(),
            "collector built for a different DAG"
        );
        let mut scale = previous.scale.clone();
        let mut map = previous.map.clone();
        for i in 0..self.node_count {
            if self.scale_cnt[i] > 0 {
                scale[i] = self.scale_sum[i] / self.scale_cnt[i] as f64;
            }
            if self.map_cnt[i] > 0 {
                map[i] = self.map_sum[i] / self.map_cnt[i] as f64;
            }
        }
        for (idx, hist) in self.edge_latency.iter_mut().enumerate() {
            if let Some(p99_ms) = hist.p99() {
                dag.set_edge_weight(
                    EdgeId::from_index(idx),
                    SimDuration::from_millis_f64(p99_ms),
                );
            }
        }
        RuntimeMetrics { scale, map }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasflow_wdl::{DagParser, FunctionProfile, Step, Workflow};

    fn dag() -> WorkflowDag {
        let wf = Workflow::steps(
            "fb",
            Step::sequence(vec![
                Step::task("a", FunctionProfile::with_millis(5, 1000)),
                Step::foreach("b", FunctionProfile::with_millis(5, 1000), 4),
                Step::task("c", FunctionProfile::with_millis(5, 0)),
            ]),
        );
        DagParser::default().parse(&wf).expect("valid workflow")
    }

    #[test]
    fn initial_metrics_reflect_definition() {
        let d = dag();
        let m = RuntimeMetrics::initial(&d);
        let b = d.nodes().iter().find(|n| n.name == "b").unwrap().id;
        assert_eq!(m.map[b.index()], 4.0);
        assert_eq!(m.scale[b.index()], 4.0, "foreach demands fanout containers");
        // Virtual nodes scale 0.
        let virt = d.nodes().iter().find(|n| !n.kind.is_function()).unwrap().id;
        assert_eq!(m.scale[virt.index()], 0.0);
    }

    #[test]
    fn scale_averages_observations() {
        let mut d = dag();
        let prev = RuntimeMetrics::initial(&d);
        let mut fc = FeedbackCollector::new(&d);
        let a = d.nodes().iter().find(|n| n.name == "a").unwrap().id;
        fc.observe_scale(a, 2);
        fc.observe_scale(a, 4);
        let next = fc.finish(&mut d, &prev);
        assert_eq!(next.scale[a.index()], 3.0);
        // Unobserved nodes keep their previous values.
        let c = d.nodes().iter().find(|n| n.name == "c").unwrap().id;
        assert_eq!(next.scale[c.index()], 1.0);
    }

    #[test]
    fn edge_p99_updates_dag_weights() {
        let mut d = dag();
        let prev = RuntimeMetrics::initial(&d);
        let eid = d.edges()[0].id;
        let before = d.edge(eid).weight;
        let mut fc = FeedbackCollector::new(&d);
        for ms in [10u64, 20, 30, 1000] {
            fc.observe_edge(eid, SimDuration::from_millis(ms));
        }
        assert_eq!(fc.edge_samples(), 4);
        fc.finish(&mut d, &prev);
        let after = d.edge(eid).weight;
        assert_ne!(before, after);
        assert_eq!(
            after,
            SimDuration::from_secs(1),
            "p99 of 4 samples is the max"
        );
        // Other edges untouched.
        assert_eq!(d.edges()[1].weight, {
            let fresh = dag();
            fresh.edges()[1].weight
        });
    }

    #[test]
    fn map_feedback_for_foreach() {
        let mut d = dag();
        let prev = RuntimeMetrics::initial(&d);
        let b = d.nodes().iter().find(|n| n.name == "b").unwrap().id;
        let mut fc = FeedbackCollector::new(&d);
        fc.observe_map(b, 8);
        let next = fc.finish(&mut d, &prev);
        assert_eq!(next.map[b.index()], 8.0);
    }
}
