//! Red-black deployment of partition versions (§4.2.2).
//!
//! "FaaSFlow adopts the Red-Black Deployment to manage different sub-graph
//! versions in worker engines [...] It ensures that only the up-to-date
//! version is getting triggered at any point in time, while the containers
//! running in out-of-date version will get recycled once all function tasks
//! return their states."
//!
//! [`DeploymentManager`] tracks which partition [`Version`] new invocations
//! use, counts in-flight invocations per version, and reports when a
//! retired version has fully drained so the caller can recycle its
//! containers and sub-graph structures.

use std::collections::HashMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::partition::Assignment;

/// A partition version number (monotonic per workflow).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Version(u32);

impl Version {
    /// The raw number.
    pub const fn get(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for Version {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Per-workflow red-black deployment state.
///
/// Assignments are held behind [`Arc`] so pinning an invocation to its
/// version is a reference-count bump, not a deep copy of the partition.
#[derive(Debug, Clone, Default)]
pub struct DeploymentManager {
    next_version: u32,
    current: Option<(Version, Arc<Assignment>)>,
    /// Retired versions still carrying in-flight invocations.
    draining: HashMap<Version, (Arc<Assignment>, u32)>,
    /// In-flight count of the current version.
    current_inflight: u32,
}

impl DeploymentManager {
    /// Creates an empty manager (no version deployed).
    pub fn new() -> Self {
        DeploymentManager::default()
    }

    /// Deploys a new assignment as the up-to-date version. The previous
    /// version (if any) starts draining; when it has no in-flight
    /// invocations it is retired immediately and returned.
    pub fn deploy(&mut self, assignment: Arc<Assignment>) -> (Version, Vec<Version>) {
        let version = Version(self.next_version);
        self.next_version += 1;
        let mut retired = Vec::new();
        if let Some((old_v, old_a)) = self.current.take() {
            if self.current_inflight == 0 {
                retired.push(old_v);
            } else {
                self.draining.insert(old_v, (old_a, self.current_inflight));
            }
        }
        self.current = Some((version, assignment));
        self.current_inflight = 0;
        (version, retired)
    }

    /// The up-to-date version and its assignment.
    pub fn current(&self) -> Option<(Version, &Assignment)> {
        self.current.as_ref().map(|(v, a)| (*v, a.as_ref()))
    }

    /// The assignment of any live (current or draining) version.
    pub fn assignment(&self, version: Version) -> Option<&Assignment> {
        self.assignment_arc_ref(version).map(Arc::as_ref)
    }

    /// Shared handle to the assignment of any live version — pinning an
    /// invocation clones the `Arc`, never the partition itself.
    pub fn assignment_arc(&self, version: Version) -> Option<Arc<Assignment>> {
        self.assignment_arc_ref(version).cloned()
    }

    fn assignment_arc_ref(&self, version: Version) -> Option<&Arc<Assignment>> {
        if let Some((v, a)) = &self.current {
            if *v == version {
                return Some(a);
            }
        }
        self.draining.get(&version).map(|(a, _)| a)
    }

    /// Marks one invocation started; it is pinned to the current version.
    ///
    /// # Panics
    ///
    /// Panics if nothing is deployed.
    pub fn invocation_started(&mut self) -> Version {
        let (v, _) = self.current.as_ref().expect("no version deployed");
        self.current_inflight += 1;
        *v
    }

    /// Marks one invocation of `version` finished. Returns `Some(version)`
    /// when that version was draining and just fully drained — its
    /// containers can now be recycled.
    ///
    /// # Panics
    ///
    /// Panics if `version` is unknown or has no in-flight invocations.
    pub fn invocation_finished(&mut self, version: Version) -> Option<Version> {
        if let Some((v, _)) = &self.current {
            if *v == version {
                assert!(
                    self.current_inflight > 0,
                    "finish without a matching start on the current version"
                );
                self.current_inflight -= 1;
                return None;
            }
        }
        let (_, inflight) = self
            .draining
            .get_mut(&version)
            .expect("finished invocation must belong to a live version");
        assert!(*inflight > 0, "drained version received another finish");
        *inflight -= 1;
        if *inflight == 0 {
            self.draining.remove(&version);
            Some(version)
        } else {
            None
        }
    }

    /// Versions still draining.
    pub fn draining_count(&self) -> usize {
        self.draining.len()
    }

    /// In-flight invocations on the current version.
    pub fn current_inflight(&self) -> u32 {
        self.current_inflight
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feedback::RuntimeMetrics;
    use crate::partition::{ContentionSet, GraphScheduler, WorkerInfo};
    use faasflow_sim::{NodeId, SimRng};
    use faasflow_wdl::{DagParser, FunctionProfile, Step, Workflow};

    fn assignment() -> Arc<Assignment> {
        let wf = Workflow::steps("d", Step::task("a", FunctionProfile::with_millis(1, 0)));
        let dag = DagParser::default().parse(&wf).unwrap();
        let metrics = RuntimeMetrics::initial(&dag);
        let mut rng = SimRng::seed_from(1);
        Arc::new(
            GraphScheduler::default()
                .partition(
                    &dag,
                    &[WorkerInfo::new(NodeId::new(1), 8)],
                    &metrics,
                    &ContentionSet::default(),
                    u64::MAX,
                    &mut rng,
                )
                .unwrap(),
        )
    }

    #[test]
    fn deploy_without_traffic_retires_old_immediately() {
        let mut dm = DeploymentManager::new();
        let (v0, retired) = dm.deploy(assignment());
        assert!(retired.is_empty());
        let (v1, retired) = dm.deploy(assignment());
        assert_eq!(retired, vec![v0]);
        assert_ne!(v0, v1);
        assert_eq!(dm.current().unwrap().0, v1);
    }

    #[test]
    fn inflight_invocations_pin_the_old_version() {
        let mut dm = DeploymentManager::new();
        let (v0, _) = dm.deploy(assignment());
        let started = dm.invocation_started();
        assert_eq!(started, v0);
        let (v1, retired) = dm.deploy(assignment());
        assert!(retired.is_empty(), "v0 still has traffic");
        assert_eq!(dm.draining_count(), 1);
        assert!(dm.assignment(v0).is_some(), "draining assignment reachable");
        // New invocations land on v1.
        assert_eq!(dm.invocation_started(), v1);
        // Draining completes when the old invocation finishes.
        assert_eq!(dm.invocation_finished(v0), Some(v0));
        assert_eq!(dm.draining_count(), 0);
        assert_eq!(dm.invocation_finished(v1), None);
    }

    #[test]
    #[should_panic(expected = "no version deployed")]
    fn start_without_deploy_panics() {
        let mut dm = DeploymentManager::new();
        dm.invocation_started();
    }

    #[test]
    #[should_panic(expected = "live version")]
    fn finish_on_unknown_version_panics() {
        let mut dm = DeploymentManager::new();
        dm.deploy(assignment());
        dm.invocation_finished(Version(99));
    }
}
