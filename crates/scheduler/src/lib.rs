//! # faasflow-scheduler
//!
//! The Graph Scheduler of FaaSFlow (§4.1): workflow graph partitioning by
//! function grouping (Algorithm 1), bin-packed group placement, runtime
//! feedback metrics (`Scale(v)`, `Map(v)`, observed edge latencies), and
//! red-black deployment of partition versions (§4.2.2).
//!
//! The partitioner is deliberately a faithful transcription of the paper's
//! Algorithm 1: greedy merging along the heaviest edges of the (re-computed)
//! critical path, subject to worker-capacity, in-memory-quota, and
//! contention constraints, with bin-packing for merged-group placement.
//!
//! ```
//! use faasflow_scheduler::{GraphScheduler, RuntimeMetrics, WorkerInfo, ContentionSet};
//! use faasflow_wdl::{DagParser, FunctionProfile, Step, Workflow};
//! use faasflow_sim::{NodeId, SimRng};
//!
//! let wf = Workflow::steps(
//!     "pair",
//!     Step::sequence(vec![
//!         Step::task("a", FunctionProfile::with_millis(10, 8 << 20)),
//!         Step::task("b", FunctionProfile::with_millis(10, 0)),
//!     ]),
//! );
//! let dag = DagParser::default().parse(&wf).unwrap();
//! let workers = vec![WorkerInfo::new(NodeId::new(1), 128), WorkerInfo::new(NodeId::new(2), 128)];
//! let metrics = RuntimeMetrics::initial(&dag);
//! let mut rng = SimRng::seed_from(7);
//! let assignment = GraphScheduler::default()
//!     .partition(&dag, &workers, &metrics, &ContentionSet::default(), u64::MAX, &mut rng)
//!     .unwrap();
//! // The heavy a->b edge gets localized into one group on one worker.
//! assert_eq!(assignment.node_of[0], assignment.node_of[1]);
//! ```

pub mod deploy;
pub mod error;
pub mod feedback;
pub mod partition;

pub use deploy::{DeploymentManager, Version};
pub use error::ScheduleError;
pub use feedback::{FeedbackCollector, RuntimeMetrics, WorkerLoad};
pub use partition::{
    Assignment, ContentionSet, GraphScheduler, Group, PartitionConfig, PlacementConfig,
    PlacementStrategy, WorkerInfo,
};
