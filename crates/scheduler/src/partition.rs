//! Algorithm 1: functions grouping and scheduling.
//!
//! A faithful transcription of the paper's listing. Each function node
//! starts as its own group on a hash/random worker (line 1, the
//! "hash-based partition" of the first iteration, §4.1.2). The algorithm
//! then repeatedly:
//!
//! 1. computes the critical path of the DAG under *effective* weights
//!    (edges inside one group are local and cheap),
//! 2. walks its cross-group edges in descending weight order,
//! 3. merges the first pair of groups that passes every constraint:
//!    * the merged group's container demand `Σ ⌈Scale(v)⌉` must fit some
//!      worker (line 12),
//!    * localising the edge must not overrun the workflow's in-memory
//!      quota `Quota(G)` (lines 13–18) — on success the producer's
//!      `StorageType` flips to `MEM`,
//!    * no contention pair `cont(G)` may end up co-grouped (lines 19–20),
//! 4. bin-packs the merged group onto a worker (line 21),
//!
//! and stops when a full pass makes no merge (line 26).

use std::collections::HashSet;

use faasflow_sim::{FunctionId, GroupId, NodeId, SimDuration, SimRng};
use faasflow_wdl::{EdgeId, WorkflowDag};
use serde::{Deserialize, Serialize};

use crate::error::ScheduleError;
use crate::feedback::{RuntimeMetrics, WorkerLoad};

/// How merged groups are placed onto workers (Algorithm 1 line 21).
///
/// Note on ties: in legacy mode (see [`PlacementConfig`]) both strategies
/// break capacity ties toward the lowest worker index, so on a fresh
/// cluster every small workflow's merged group lands on worker 0 and the
/// cluster serializes on that node. The load-aware mode replaces the index
/// tie-break with least-loaded/locality scoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PlacementStrategy {
    /// Best fit: the worker with the *least* sufficient residual capacity.
    /// Packs tightly, concentrating groups on few nodes.
    BestFit,
    /// Worst fit: the worker with the *most* residual capacity. This is the
    /// load balancer of §4.1.3 ("function nodes with less data movement
    /// will be scheduled to balance the load and resource") and reproduces
    /// Figure 15's distribution: large multi-group workflows spread across
    /// all workers, small single-group applications stay on one.
    #[default]
    WorstFit,
}

/// Cluster-wide placement tuning: the load- and locality-aware layer on top
/// of Algorithm 1's bin-packing.
///
/// `Default` is the tested least-loaded configuration. The simulated
/// cluster opts *out* explicitly via [`PlacementConfig::legacy`], which
/// keeps the original behavior — random initial placement and the
/// worker-0-biased capacity tie-break — bit-identical so historical goldens
/// stay stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementConfig {
    /// Master switch. When false, placement is byte-identical to the
    /// pre-placement-layer builds (same comparisons, same RNG draws).
    pub enabled: bool,
    /// Data-edge affinity below this many bytes is ignored when scoring a
    /// merged group's candidate workers; above it, co-locating the edge
    /// (a FaaStore local hit) outranks residual capacity.
    pub locality_threshold_bytes: u64,
    /// The cluster's incremental rebalancer fires when the most-loaded
    /// worker holds more than this percentage of the mean per-worker placed
    /// group count (e.g. 200 = twice the mean). Must be ≥ 100.
    pub skew_threshold_pct: u32,
    /// Minimum completed invocations between skew-triggered rebalance
    /// sweeps. Must be ≥ 1 when enabled.
    pub rebalance_cooldown: u32,
}

impl Default for PlacementConfig {
    fn default() -> Self {
        PlacementConfig {
            enabled: true,
            locality_threshold_bytes: 64 << 10,
            skew_threshold_pct: 200,
            rebalance_cooldown: 16,
        }
    }
}

impl PlacementConfig {
    /// The pre-placement-layer behavior: random initial placement and the
    /// lowest-index capacity tie-break. Bit-identical to builds that
    /// predate the placement layer.
    pub fn legacy() -> Self {
        PlacementConfig {
            enabled: false,
            ..PlacementConfig::default()
        }
    }
}

/// Partitioner tunables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionConfig {
    /// Effective weight of an edge whose endpoints share a group (local
    /// memory transfer — nearly free compared to the network).
    pub local_edge_weight: SimDuration,
    /// Safety bound on merge iterations (the algorithm terminates after at
    /// most `n-1` merges anyway; this guards against regressions).
    pub max_merges: u32,
    /// Group placement policy.
    pub placement: PlacementStrategy,
    /// Load- and locality-aware placement tuning.
    #[serde(default)]
    pub placement_config: PlacementConfig,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            local_edge_weight: SimDuration::from_micros(200),
            max_merges: 100_000,
            placement: PlacementStrategy::WorstFit,
            placement_config: PlacementConfig::default(),
        }
    }
}

/// One worker node and its container capacity — the paper's `Cap[node]`,
/// "a list of the capacity of containers left to be created on each node".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerInfo {
    /// The worker's node id in the cluster.
    pub node: NodeId,
    /// Containers this node can still host. The cluster passes *residual*
    /// capacity here when load-aware placement is enabled (nominal minus
    /// live instances), nominal capacity otherwise.
    pub capacity: u32,
    /// Live load snapshot used to score otherwise-equal candidates.
    #[serde(default)]
    pub load: WorkerLoad,
}

impl WorkerInfo {
    /// Creates an unloaded worker descriptor.
    pub fn new(node: NodeId, capacity: u32) -> Self {
        WorkerInfo {
            node,
            capacity,
            load: WorkerLoad::default(),
        }
    }

    /// Attaches a live load snapshot.
    pub fn with_load(mut self, load: WorkerLoad) -> Self {
        self.load = load;
        self
    }
}

/// Function pairs that must not share a group — the paper's
/// `cont(G) = {(f_i, f_j)}`, fed by orthogonal interference predictors.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ContentionSet {
    pairs: HashSet<(FunctionId, FunctionId)>,
}

impl ContentionSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        ContentionSet::default()
    }

    /// Declares `a` and `b` conflicting (order-insensitive).
    pub fn declare(&mut self, a: FunctionId, b: FunctionId) {
        let pair = if a <= b { (a, b) } else { (b, a) };
        self.pairs.insert(pair);
    }

    /// True when `a` and `b` conflict.
    pub fn conflicts(&self, a: FunctionId, b: FunctionId) -> bool {
        let pair = if a <= b { (a, b) } else { (b, a) };
        self.pairs.contains(&pair)
    }

    /// Number of declared pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no pair is declared.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// One function group (sub-graph) assigned to a worker.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Group {
    /// Stable group id.
    pub id: GroupId,
    /// Member DAG nodes (functions and virtual brackets), ascending.
    pub members: Vec<FunctionId>,
    /// The worker hosting the group.
    pub worker: NodeId,
    /// Container demand `Σ ⌈Scale(v)⌉` of the members.
    pub capacity_needed: u32,
}

/// The partitioner's output: groups, per-node placement, and per-function
/// storage classes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// The function groups, in stable id order.
    pub groups: Vec<Group>,
    /// Worker of each DAG node, indexed by [`FunctionId::index`].
    pub node_of: Vec<NodeId>,
    /// Group of each DAG node.
    pub group_of: Vec<GroupId>,
    /// Algorithm 1's `f.StorageType == 'MEM'`: whether the node's output
    /// may reside in local memory.
    pub storage_local: Vec<bool>,
    /// Bytes of edge data localised in memory (`mem_consume`).
    pub mem_consume: u64,
    /// The quota the partition ran under.
    pub quota: u64,
}

impl Assignment {
    /// The worker hosting a DAG node.
    pub fn worker_of(&self, node: FunctionId) -> NodeId {
        self.node_of[node.index()]
    }

    /// True when a control edge's endpoints share a worker.
    pub fn is_local_edge(&self, dag: &WorkflowDag, edge: EdgeId) -> bool {
        let e = dag.edge(edge);
        self.worker_of(e.from) == self.worker_of(e.to)
    }

    /// True when at least one DAG node is routed to `worker` — i.e. the
    /// worker's engine plays a part in invocations pinned to this
    /// assignment (crash recovery skips uninvolved engines).
    pub fn involves(&self, worker: NodeId) -> bool {
        self.node_of.contains(&worker)
    }

    /// Per-worker group distribution (Figure 15): `(worker, group count,
    /// function count)` sorted by worker.
    pub fn distribution(&self, dag: &WorkflowDag) -> Vec<(NodeId, usize, usize)> {
        let mut per: std::collections::BTreeMap<NodeId, (usize, usize)> =
            std::collections::BTreeMap::new();
        for g in &self.groups {
            let funcs = g
                .members
                .iter()
                .filter(|&&m| dag.node(m).kind.is_function())
                .count();
            let entry = per.entry(g.worker).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += funcs;
        }
        per.into_iter().map(|(n, (g, f))| (n, g, f)).collect()
    }

    /// Bytes per invocation that must cross workers under this placement —
    /// the data a FaaStore deployment cannot localise even with unlimited
    /// quota (each data edge whose producer and consumer live on different
    /// workers, plus every output whose consumer *set* spans workers,
    /// since FaaStore's placement rule is all-or-nothing).
    pub fn cross_worker_bytes(&self, dag: &WorkflowDag) -> u64 {
        use std::collections::HashMap;
        // Group data edges by producer to apply the all-consumers rule.
        let mut by_producer: HashMap<_, Vec<_>> = HashMap::new();
        for d in dag.data_edges() {
            by_producer.entry(d.producer).or_default().push(d);
        }
        let mut total = 0;
        for (producer, edges) in by_producer {
            let home = self.worker_of(producer);
            let co_located = edges.iter().all(|d| self.worker_of(d.consumer) == home);
            if !co_located {
                total += edges.iter().map(|d| d.bytes).sum::<u64>();
            }
        }
        total
    }

    /// Rough resident size of this assignment (Figure 16's scheduler memory
    /// series): sums the owned buffers.
    pub fn approx_memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.groups
            .iter()
            .map(|g| size_of::<Group>() + g.members.len() * size_of::<FunctionId>())
            .sum::<usize>()
            + self.node_of.len() * size_of::<NodeId>()
            + self.group_of.len() * size_of::<GroupId>()
            + self.storage_local.len()
    }
}

/// The Graph Scheduler's partitioner.
#[derive(Debug, Clone, Default)]
pub struct GraphScheduler {
    config: PartitionConfig,
}

impl GraphScheduler {
    /// A scheduler with explicit configuration.
    pub fn new(config: PartitionConfig) -> Self {
        GraphScheduler { config }
    }

    /// Runs Algorithm 1.
    ///
    /// `quota` is `Quota(G)` from Eq. (2) (pass `u64::MAX` to disable the
    /// memory constraint, `0` to forbid localisation entirely — the plain
    /// FaaSFlow-without-FaaStore configuration).
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] when no worker exists, the metrics don't
    /// match the DAG, or the initial singleton groups cannot be placed.
    pub fn partition(
        &self,
        dag: &WorkflowDag,
        workers: &[WorkerInfo],
        metrics: &RuntimeMetrics,
        contention: &ContentionSet,
        quota: u64,
        rng: &mut SimRng,
    ) -> Result<Assignment, ScheduleError> {
        if workers.is_empty() {
            return Err(ScheduleError::NoWorkers);
        }
        if metrics.scale.len() != dag.node_count() {
            return Err(ScheduleError::MetricsMismatch {
                expected: dag.node_count(),
                actual: metrics.scale.len(),
            });
        }

        // Load-aware mode rotates the deterministic tie-break order once
        // per partition (a single RNG draw), so equal-score ties land on
        // different workers across successive partitions instead of always
        // on index 0. Legacy mode draws nothing here, keeping the RNG
        // stream — and therefore every historical golden — bit-identical.
        let rot = if self.config.placement_config.enabled {
            (rng.next_u64() % workers.len() as u64) as usize
        } else {
            0
        };

        let n = dag.node_count();
        // Container demand of each node: ⌈Scale(v)⌉ (0 for virtual nodes).
        let demand: Vec<u32> = (0..n)
            .map(|i| {
                let node = dag.node(FunctionId::from(i));
                if node.kind.is_function() {
                    metrics.scale[i].ceil().max(1.0) as u32
                } else {
                    0
                }
            })
            .collect();

        // Line 1: singleton groups on random workers (hash partition).
        let mut cap: Vec<i64> = workers.iter().map(|w| i64::from(w.capacity)).collect();
        let mut group_of: Vec<usize> = (0..n).collect();
        // members[g] empty ⇒ group g was absorbed.
        let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        let mut worker_of_group: Vec<usize> = Vec::with_capacity(n);
        for &node_demand in demand.iter().take(n) {
            let w = self
                .place_initial(workers, &cap, node_demand, rot, rng)
                .ok_or_else(|| ScheduleError::InsufficientCapacity {
                    required: node_demand,
                    largest_free: cap.iter().copied().max().unwrap_or(0).max(0) as u32,
                })?;
            cap[w] -= i64::from(node_demand);
            worker_of_group.push(w);
        }

        // Line 2.
        let mut storage_local = vec![false; n];
        let mut mem_consume: u64 = 0;

        let group_demand =
            |members: &[usize], demand: &[u32]| -> u32 { members.iter().map(|&m| demand[m]).sum() };

        // Lines 3–26.
        let mut merges = 0;
        loop {
            if merges >= self.config.max_merges {
                break;
            }
            // Line 4: critical path under effective weights.
            let local_w = self.config.local_edge_weight;
            let (_, cpath_edges) = dag.critical_path_with(|e| {
                if group_of[e.from.index()] == group_of[e.to.index()] {
                    local_w.min(e.weight)
                } else {
                    e.weight
                }
            });
            // Line 5: descending weight.
            let mut edges: Vec<EdgeId> = cpath_edges;
            edges.sort_by_key(|&e| std::cmp::Reverse(dag.edge(e).weight));

            let mut merged = false;
            for eid in edges {
                let e = dag.edge(eid);
                let (fs, fe) = (e.from.index(), e.to.index());
                let (gs, ge) = (group_of[fs], group_of[fe]);
                if gs == ge {
                    continue; // line 9
                }
                // Lines 10–12: capacity feasibility. Free both groups'
                // demands, then check the best fit.
                let n_start = group_demand(&members[gs], &demand);
                let n_end = group_demand(&members[ge], &demand);
                let need = i64::from(n_start) + i64::from(n_end);
                let fits_somewhere = (0..workers.len()).any(|w| {
                    let mut free = cap[w];
                    if worker_of_group[gs] == w {
                        free += i64::from(n_start);
                    }
                    if worker_of_group[ge] == w {
                        free += i64::from(n_end);
                    }
                    free >= need
                });
                if !fits_somewhere {
                    continue;
                }
                // Lines 13–18: in-memory quota for localising this edge.
                // Virtual bracket nodes only *relay* a function's output;
                // the quota is charged once, on the real producer's edge,
                // or a single logical transfer routed through a bracket
                // would be double-billed.
                if dag.node(e.from).kind.is_function() && !storage_local[fs] {
                    if mem_consume.saturating_add(e.bytes) > quota {
                        continue;
                    }
                    mem_consume += e.bytes;
                    storage_local[fs] = true;
                }
                // Lines 19–20: contention pairs must not be co-grouped.
                let conflict = members[gs].iter().any(|&a| {
                    members[ge]
                        .iter()
                        .any(|&b| contention.conflicts(FunctionId::from(a), FunctionId::from(b)))
                });
                if conflict {
                    continue;
                }
                // Line 21: bin-pack the merged group onto a worker.
                cap[worker_of_group[gs]] += i64::from(n_start);
                cap[worker_of_group[ge]] += i64::from(n_end);
                let target = if self.config.placement_config.enabled {
                    self.place_merged(
                        dag,
                        workers,
                        &cap,
                        &group_of,
                        &worker_of_group,
                        gs,
                        ge,
                        need,
                        rot,
                    )
                } else {
                    let candidates = (0..workers.len()).filter(|&w| cap[w] >= need);
                    match self.config.placement {
                        PlacementStrategy::BestFit => candidates.min_by_key(|&w| (cap[w], w)),
                        PlacementStrategy::WorstFit => {
                            candidates.max_by_key(|&w| (cap[w], std::cmp::Reverse(w)))
                        }
                    }
                }
                .expect("fits_somewhere guaranteed a target");
                cap[target] -= need;
                // Lines 22–24: merge ge into gs.
                let moved = std::mem::take(&mut members[ge]);
                for &m in &moved {
                    group_of[m] = gs;
                }
                members[gs].extend(moved);
                worker_of_group[gs] = target;
                merges += 1;
                merged = true;
                break;
            }
            if !merged {
                break; // line 26
            }
        }

        // Assemble the output in stable order.
        let mut groups = Vec::new();
        let mut group_ids = vec![GroupId::new(0); n];
        let mut node_of = vec![NodeId::new(0); n];
        let mut next_gid = 0u32;
        for g in 0..n {
            if members[g].is_empty() {
                continue;
            }
            let gid = GroupId::new(next_gid);
            next_gid += 1;
            let mut ms: Vec<usize> = members[g].clone();
            ms.sort_unstable();
            let worker = workers[worker_of_group[g]].node;
            for &m in &ms {
                group_ids[m] = gid;
                node_of[m] = worker;
            }
            groups.push(Group {
                id: gid,
                members: ms.iter().map(|&m| FunctionId::from(m)).collect(),
                worker,
                capacity_needed: group_demand(&members[g], &demand),
            });
        }

        Ok(Assignment {
            groups,
            node_of,
            group_of: group_ids,
            storage_local,
            mem_consume,
            quota,
        })
    }

    /// Initial placement among workers that can host `demand` (Algorithm 1
    /// line 1). Legacy mode picks uniformly at random (the paper's hash
    /// partition); load-aware mode picks the least-loaded feasible worker
    /// deterministically: most residual capacity, then the calmest recent
    /// tail and memory pressure, then the rotated index.
    fn place_initial(
        &self,
        workers: &[WorkerInfo],
        cap: &[i64],
        demand: u32,
        rot: usize,
        rng: &mut SimRng,
    ) -> Option<usize> {
        if self.config.placement_config.enabled {
            let n = cap.len();
            (0..n)
                .filter(|&w| cap[w] >= i64::from(demand))
                .max_by_key(|&w| {
                    let l = workers[w].load;
                    (
                        cap[w],
                        std::cmp::Reverse(l.recent_p99_ms),
                        std::cmp::Reverse(l.mem_used_bytes),
                        std::cmp::Reverse((w + n - rot) % n),
                    )
                })
        } else {
            let feasible: Vec<usize> = (0..cap.len())
                .filter(|&w| cap[w] >= i64::from(demand))
                .collect();
            rng.pick(&feasible).copied()
        }
    }

    /// Load- and locality-aware variant of Algorithm 1's line 21: among the
    /// workers that can host the merged group `gs ∪ ge`, prefer (1) the
    /// worker already holding the heaviest data traffic with the merged
    /// members — placing the group there turns those edges into FaaStore
    /// local hits — then (2) the strategy's capacity preference and calmest
    /// live load, with the rotated index as the final deterministic
    /// tie-break. Affinity below `locality_threshold_bytes` is ignored so
    /// trivial edges cannot override load balancing.
    #[allow(clippy::too_many_arguments)]
    fn place_merged(
        &self,
        dag: &WorkflowDag,
        workers: &[WorkerInfo],
        cap: &[i64],
        group_of: &[usize],
        worker_of_group: &[usize],
        gs: usize,
        ge: usize,
        need: i64,
        rot: usize,
    ) -> Option<usize> {
        let n = workers.len();
        let mut affinity = vec![0u64; n];
        for d in dag.data_edges() {
            let p = d.producer.index();
            let c = d.consumer.index();
            let p_in = group_of[p] == gs || group_of[p] == ge;
            let c_in = group_of[c] == gs || group_of[c] == ge;
            if p_in != c_in {
                let outside = if p_in { c } else { p };
                affinity[worker_of_group[group_of[outside]]] += d.bytes;
            }
        }
        let threshold = self.config.placement_config.locality_threshold_bytes;
        let aff = |w: usize| {
            if affinity[w] >= threshold {
                affinity[w]
            } else {
                0
            }
        };
        let candidates = (0..n).filter(|&w| cap[w] >= need);
        match self.config.placement {
            PlacementStrategy::BestFit => candidates.max_by_key(|&w| {
                let l = workers[w].load;
                (
                    aff(w),
                    std::cmp::Reverse(cap[w]),
                    std::cmp::Reverse(l.recent_p99_ms),
                    std::cmp::Reverse(l.mem_used_bytes),
                    std::cmp::Reverse((w + n - rot) % n),
                )
            }),
            PlacementStrategy::WorstFit => candidates.max_by_key(|&w| {
                let l = workers[w].load;
                (
                    aff(w),
                    cap[w],
                    std::cmp::Reverse(l.recent_p99_ms),
                    std::cmp::Reverse(l.mem_used_bytes),
                    std::cmp::Reverse((w + n - rot) % n),
                )
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasflow_wdl::{DagParser, FunctionProfile, Step, Workflow};

    fn parse(wf: &Workflow) -> WorkflowDag {
        DagParser::default().parse(wf).expect("valid workflow")
    }

    fn workers(n: u32, capacity: u32) -> Vec<WorkerInfo> {
        (0..n)
            .map(|i| WorkerInfo::new(NodeId::new(i + 1), capacity))
            .collect()
    }

    fn chain(names_out: &[(&str, u64)]) -> Workflow {
        Workflow::steps(
            "chain",
            Step::sequence(
                names_out
                    .iter()
                    .map(|(n, out)| Step::task(*n, FunctionProfile::with_millis(10, *out)))
                    .collect(),
            ),
        )
    }

    fn run(dag: &WorkflowDag, ws: &[WorkerInfo], cont: &ContentionSet, quota: u64) -> Assignment {
        let metrics = RuntimeMetrics::initial(dag);
        let mut rng = SimRng::seed_from(42);
        GraphScheduler::default()
            .partition(dag, ws, &metrics, cont, quota, &mut rng)
            .expect("partition succeeds")
    }

    #[test]
    fn heavy_chain_collapses_into_one_group() {
        let wf = chain(&[("a", 50 << 20), ("b", 50 << 20), ("c", 0)]);
        let dag = parse(&wf);
        let a = run(&dag, &workers(4, 64), &ContentionSet::default(), u64::MAX);
        assert_eq!(a.groups.len(), 1, "all three merge along heavy edges");
        let w = a.node_of[0];
        assert!(a.node_of.iter().all(|&n| n == w));
        // Both producers flipped to MEM.
        assert!(a.storage_local[0] && a.storage_local[1]);
        assert_eq!(a.mem_consume, 100 << 20);
    }

    #[test]
    fn zero_quota_blocks_localisation() {
        let wf = chain(&[("a", 50 << 20), ("b", 50 << 20), ("c", 0)]);
        let dag = parse(&wf);
        let a = run(&dag, &workers(4, 64), &ContentionSet::default(), 0);
        assert!(
            a.groups.len() > 1,
            "no merge is possible when nothing can be localised"
        );
        assert!(a.storage_local.iter().all(|&s| !s));
        assert_eq!(a.mem_consume, 0);
    }

    #[test]
    fn quota_limits_how_much_merges() {
        let wf = chain(&[("a", 50 << 20), ("b", 50 << 20), ("c", 0)]);
        let dag = parse(&wf);
        // Quota admits exactly one 50MB edge.
        let a = run(&dag, &workers(4, 64), &ContentionSet::default(), 50 << 20);
        assert_eq!(a.mem_consume, 50 << 20);
        assert_eq!(
            a.storage_local.iter().filter(|&&s| s).count(),
            1,
            "only one producer localises"
        );
        assert_eq!(a.groups.len(), 2);
    }

    #[test]
    fn contention_pair_never_cogrouped() {
        let wf = chain(&[("a", 50 << 20), ("b", 50 << 20), ("c", 0)]);
        let dag = parse(&wf);
        let a_id = dag.nodes().iter().find(|n| n.name == "a").unwrap().id;
        let b_id = dag.nodes().iter().find(|n| n.name == "b").unwrap().id;
        let mut cont = ContentionSet::new();
        cont.declare(a_id, b_id);
        let a = run(&dag, &workers(4, 64), &cont, u64::MAX);
        assert_ne!(
            a.group_of[a_id.index()],
            a.group_of[b_id.index()],
            "conflicting functions stay apart"
        );
    }

    #[test]
    fn capacity_forces_spreading() {
        // Each function demands 1 container; workers hold only 1 each, so
        // no merge can ever fit 2.
        let wf = chain(&[("a", 50 << 20), ("b", 50 << 20), ("c", 0)]);
        let dag = parse(&wf);
        let a = run(&dag, &workers(3, 1), &ContentionSet::default(), u64::MAX);
        assert_eq!(a.groups.len(), 3);
    }

    #[test]
    fn no_workers_is_an_error() {
        let wf = chain(&[("a", 0)]);
        let dag = parse(&wf);
        let metrics = RuntimeMetrics::initial(&dag);
        let mut rng = SimRng::seed_from(1);
        let res = GraphScheduler::default().partition(
            &dag,
            &[],
            &metrics,
            &ContentionSet::default(),
            u64::MAX,
            &mut rng,
        );
        assert_eq!(res.unwrap_err(), ScheduleError::NoWorkers);
    }

    #[test]
    fn insufficient_capacity_is_an_error() {
        let wf = chain(&[("a", 0), ("b", 0)]);
        let dag = parse(&wf);
        let metrics = RuntimeMetrics::initial(&dag);
        let mut rng = SimRng::seed_from(1);
        let res = GraphScheduler::default().partition(
            &dag,
            &workers(1, 1), // only 1 container total, 2 needed
            &metrics,
            &ContentionSet::default(),
            u64::MAX,
            &mut rng,
        );
        assert!(matches!(
            res,
            Err(ScheduleError::InsufficientCapacity { .. })
        ));
    }

    #[test]
    fn scale_feedback_raises_demand() {
        let wf = chain(&[("a", 1 << 20), ("b", 0)]);
        let dag = parse(&wf);
        let mut metrics = RuntimeMetrics::initial(&dag);
        metrics.scale[0] = 5.0; // a scaled to ~5 instances at runtime
        let mut rng = SimRng::seed_from(1);
        let a = GraphScheduler::default()
            .partition(
                &dag,
                &workers(2, 6),
                &metrics,
                &ContentionSet::default(),
                u64::MAX,
                &mut rng,
            )
            .expect("fits");
        let ga = &a.groups[a.group_of[0].index()];
        assert!(ga.capacity_needed >= 5);
    }

    #[test]
    fn every_node_lands_in_exactly_one_group() {
        let wf = Workflow::steps(
            "mix",
            Step::sequence(vec![
                Step::task("s", FunctionProfile::with_millis(5, 4 << 20)),
                Step::parallel(vec![
                    Step::task("p0", FunctionProfile::with_millis(5, 1 << 20)),
                    Step::task("p1", FunctionProfile::with_millis(5, 2 << 20)),
                ]),
                Step::foreach("fe", FunctionProfile::with_millis(5, 8 << 20), 4),
                Step::task("t", FunctionProfile::with_millis(5, 0)),
            ]),
        );
        let dag = parse(&wf);
        let a = run(&dag, &workers(3, 32), &ContentionSet::default(), u64::MAX);
        let mut seen = vec![0usize; dag.node_count()];
        for g in &a.groups {
            for m in &g.members {
                seen[m.index()] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "partition covers every node once"
        );
        // Consistency between group list and lookup vectors.
        for g in &a.groups {
            for m in &g.members {
                assert_eq!(a.group_of[m.index()], g.id);
                assert_eq!(a.node_of[m.index()], g.worker);
            }
        }
    }

    #[test]
    fn distribution_reports_all_groups() {
        let wf = chain(&[("a", 1), ("b", 1), ("c", 0)]);
        let dag = parse(&wf);
        let a = run(&dag, &workers(2, 64), &ContentionSet::default(), u64::MAX);
        let dist = a.distribution(&dag);
        let groups: usize = dist.iter().map(|&(_, g, _)| g).sum();
        assert_eq!(groups, a.groups.len());
        let funcs: usize = dist.iter().map(|&(_, _, f)| f).sum();
        assert_eq!(funcs, dag.function_count());
        assert!(a.approx_memory_bytes() > 0);
    }

    #[test]
    fn cross_worker_bytes_follows_the_placement() {
        let wf = chain(&[("a", 50 << 20), ("b", 50 << 20), ("c", 0)]);
        let dag = parse(&wf);
        // Full merge: nothing crosses.
        let merged = run(&dag, &workers(4, 64), &ContentionSet::default(), u64::MAX);
        assert_eq!(merged.cross_worker_bytes(&dag), 0);
        // Forced spread (capacity 1 each): everything crosses.
        let spread = run(&dag, &workers(3, 1), &ContentionSet::default(), u64::MAX);
        assert_eq!(
            spread.cross_worker_bytes(&dag),
            dag.total_data_bytes(),
            "singleton groups ship every edge"
        );
    }

    #[test]
    fn default_placement_config_is_least_loaded() {
        // Satellite: the new least-loaded tie-break is the *default* of
        // PlacementConfig; legacy() is the explicit opt-out.
        assert!(PlacementConfig::default().enabled);
        assert!(!PlacementConfig::legacy().enabled);
        assert!(PartitionConfig::default().placement_config.enabled);
    }

    fn legacy_scheduler() -> GraphScheduler {
        GraphScheduler::new(PartitionConfig {
            placement_config: PlacementConfig::legacy(),
            ..PartitionConfig::default()
        })
    }

    #[test]
    fn legacy_tiebreak_piles_merges_onto_worker_zero() {
        // Documents the worker-0 bias: on a fresh cluster all capacities
        // tie, both strategies break toward the lowest index, and every
        // small workflow's merged group lands on the first worker.
        let wf = chain(&[("a", 50 << 20), ("b", 50 << 20), ("c", 0)]);
        let dag = parse(&wf);
        let metrics = RuntimeMetrics::initial(&dag);
        for seed in 0..8 {
            let mut rng = SimRng::seed_from(seed);
            let a = legacy_scheduler()
                .partition(
                    &dag,
                    &workers(4, 64),
                    &metrics,
                    &ContentionSet::default(),
                    u64::MAX,
                    &mut rng,
                )
                .expect("partition succeeds");
            assert_eq!(a.groups.len(), 1);
            assert!(
                a.node_of.iter().all(|&w| w == NodeId::new(1)),
                "legacy merge always targets the first worker"
            );
        }
    }

    #[test]
    fn load_aware_tiebreak_avoids_hot_worker() {
        // Equal residual capacity everywhere, but workers 0 and 2 carry a
        // hot recent tail: the merged group must land on the calm worker 1.
        let wf = chain(&[("a", 50 << 20), ("b", 50 << 20), ("c", 0)]);
        let dag = parse(&wf);
        let metrics = RuntimeMetrics::initial(&dag);
        let hot = WorkerLoad {
            recent_p99_ms: 900,
            ..WorkerLoad::default()
        };
        let ws = vec![
            WorkerInfo::new(NodeId::new(1), 64).with_load(hot),
            WorkerInfo::new(NodeId::new(2), 64),
            WorkerInfo::new(NodeId::new(3), 64).with_load(hot),
        ];
        let mut rng = SimRng::seed_from(42);
        let a = GraphScheduler::default()
            .partition(
                &dag,
                &ws,
                &metrics,
                &ContentionSet::default(),
                u64::MAX,
                &mut rng,
            )
            .expect("partition succeeds");
        assert_eq!(a.groups.len(), 1);
        assert!(a.node_of.iter().all(|&w| w == NodeId::new(2)));
    }

    #[test]
    fn load_aware_respects_residual_capacity() {
        // Worker 0 reports almost no residual room (the cluster already
        // subtracted its live load); the whole chain must go elsewhere.
        let wf = chain(&[("a", 50 << 20), ("b", 50 << 20), ("c", 0)]);
        let dag = parse(&wf);
        let metrics = RuntimeMetrics::initial(&dag);
        let ws = vec![
            WorkerInfo::new(NodeId::new(1), 1).with_load(WorkerLoad {
                running: 11,
                ..WorkerLoad::default()
            }),
            WorkerInfo::new(NodeId::new(2), 64),
        ];
        let mut rng = SimRng::seed_from(42);
        let a = GraphScheduler::default()
            .partition(
                &dag,
                &ws,
                &metrics,
                &ContentionSet::default(),
                u64::MAX,
                &mut rng,
            )
            .expect("partition succeeds");
        assert_eq!(a.groups.len(), 1);
        assert!(a.node_of.iter().all(|&w| w == NodeId::new(2)));
    }

    #[test]
    fn locality_pulls_merge_toward_its_data() {
        // Only one merge is allowed. {a,b} merge along the 50MB edge; the
        // 10MB edge b→c should pull the merged group onto whichever worker
        // already hosts c, co-locating the heavy data edge.
        let wf = chain(&[("a", 50 << 20), ("b", 10 << 20), ("c", 0)]);
        let dag = parse(&wf);
        let metrics = RuntimeMetrics::initial(&dag);
        let sched = GraphScheduler::new(PartitionConfig {
            max_merges: 1,
            ..PartitionConfig::default()
        });
        for seed in 0..8 {
            let mut rng = SimRng::seed_from(seed);
            let a = sched
                .partition(
                    &dag,
                    &workers(3, 64),
                    &metrics,
                    &ContentionSet::default(),
                    u64::MAX,
                    &mut rng,
                )
                .expect("partition succeeds");
            assert_eq!(a.groups.len(), 2, "exactly one merge happened");
            let ca = a.worker_of(dag.nodes().iter().find(|n| n.name == "a").unwrap().id);
            let cb = a.worker_of(dag.nodes().iter().find(|n| n.name == "b").unwrap().id);
            let cc = a.worker_of(dag.nodes().iter().find(|n| n.name == "c").unwrap().id);
            assert_eq!(ca, cb, "a and b merged");
            assert_eq!(ca, cc, "the merged group moved onto c's worker");
        }
    }

    #[test]
    fn load_aware_partition_is_deterministic_for_a_seed() {
        let wf = chain(&[("a", 9 << 20), ("b", 3 << 20), ("c", 0)]);
        let dag = parse(&wf);
        let metrics = RuntimeMetrics::initial(&dag);
        let hot = WorkerLoad {
            queued: 3,
            running: 2,
            mem_used_bytes: 5 << 20,
            recent_p99_ms: 120,
        };
        let mk = || {
            let mut rng = SimRng::seed_from(123);
            GraphScheduler::default()
                .partition(
                    &dag,
                    &[
                        WorkerInfo::new(NodeId::new(1), 16).with_load(hot),
                        WorkerInfo::new(NodeId::new(2), 16),
                        WorkerInfo::new(NodeId::new(3), 9),
                    ],
                    &metrics,
                    &ContentionSet::default(),
                    u64::MAX,
                    &mut rng,
                )
                .expect("partition succeeds")
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn partition_is_deterministic_for_a_seed() {
        let wf = chain(&[("a", 9 << 20), ("b", 3 << 20), ("c", 0)]);
        let dag = parse(&wf);
        let metrics = RuntimeMetrics::initial(&dag);
        let mk = || {
            let mut rng = SimRng::seed_from(123);
            GraphScheduler::default()
                .partition(
                    &dag,
                    &workers(4, 16),
                    &metrics,
                    &ContentionSet::default(),
                    u64::MAX,
                    &mut rng,
                )
                .expect("partition succeeds")
        };
        assert_eq!(mk(), mk());
    }
}
