//! Property tests: Algorithm 1's invariants on random workflow DAGs.

use faasflow_scheduler::{ContentionSet, GraphScheduler, RuntimeMetrics, WorkerInfo};
use faasflow_sim::{FunctionId, NodeId, SimRng};
use faasflow_wdl::{DagParser, DagSpec, FunctionProfile, Workflow};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomDag {
    /// (exec ms, output bytes) per task.
    tasks: Vec<(u64, u64)>,
    /// Forward edges (from < to) by index pair, deduplicated.
    edges: Vec<(usize, usize)>,
    seed: u64,
    quota: u64,
    workers: u32,
    capacity: u32,
    contention_pairs: Vec<(usize, usize)>,
}

fn dag_strategy() -> impl Strategy<Value = RandomDag> {
    (2usize..24).prop_flat_map(|n| {
        let tasks = proptest::collection::vec((1u64..200, 0u64..(32 << 20)), n);
        let edges = proptest::collection::vec((0..n, 0..n), 0..(n * 2));
        let contention = proptest::collection::vec((0..n, 0..n), 0..4);
        (
            tasks,
            edges,
            contention,
            any::<u64>(),
            0u64..(1u64 << 32),
            1u32..8,
            1u32..32,
        )
            .prop_map(
                move |(tasks, raw_edges, contention, seed, quota, workers, capacity)| {
                    let mut edges: Vec<(usize, usize)> = raw_edges
                        .into_iter()
                        .filter(|&(a, b)| a != b)
                        .map(|(a, b)| (a.min(b), a.max(b)))
                        .collect();
                    edges.sort_unstable();
                    edges.dedup();
                    let contention_pairs =
                        contention.into_iter().filter(|&(a, b)| a != b).collect();
                    RandomDag {
                        tasks,
                        edges,
                        seed,
                        quota,
                        workers,
                        capacity,
                        contention_pairs,
                    }
                },
            )
    })
}

fn build(r: &RandomDag) -> Option<faasflow_wdl::WorkflowDag> {
    let mut spec = DagSpec::new();
    for (i, &(ms, out)) in r.tasks.iter().enumerate() {
        spec.task(format!("t{i}"), FunctionProfile::with_millis(ms, out));
    }
    for &(a, b) in &r.edges {
        spec.edge(format!("t{a}"), format!("t{b}"));
    }
    DagParser::default()
        .parse(&Workflow::dag("prop", spec))
        .ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Partition invariants: every node in exactly one group; groups fit
    /// their workers; contention pairs never co-grouped; localized bytes
    /// within quota; lookup tables consistent.
    #[test]
    fn partition_invariants(r in dag_strategy()) {
        let Some(dag) = build(&r) else { return Ok(()); };
        let workers: Vec<WorkerInfo> = (0..r.workers)
            .map(|i| WorkerInfo::new(NodeId::new(i + 1), r.capacity))
            .collect();
        let metrics = RuntimeMetrics::initial(&dag);
        let mut contention = ContentionSet::new();
        for &(a, b) in &r.contention_pairs {
            contention.declare(FunctionId::from(a), FunctionId::from(b));
        }
        let mut rng = SimRng::seed_from(r.seed);
        let result = GraphScheduler::default().partition(
            &dag, &workers, &metrics, &contention, r.quota, &mut rng,
        );
        let total_capacity = r.workers as u64 * r.capacity as u64;
        let a = match result {
            Ok(a) => a,
            Err(_) => {
                // Only a genuine capacity shortfall may fail.
                prop_assert!(
                    (dag.function_count() as u64) > total_capacity || r.capacity == 0,
                    "partition failed although {} functions fit capacity {}",
                    dag.function_count(),
                    total_capacity
                );
                return Ok(());
            }
        };

        // Coverage: every node in exactly one group.
        let mut seen = vec![0u32; dag.node_count()];
        for g in &a.groups {
            for m in &g.members {
                seen[m.index()] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));

        // Lookup consistency + per-worker capacity.
        let mut demand_per_worker = std::collections::HashMap::new();
        for g in &a.groups {
            for m in &g.members {
                prop_assert_eq!(a.group_of[m.index()], g.id);
                prop_assert_eq!(a.node_of[m.index()], g.worker);
            }
            *demand_per_worker.entry(g.worker).or_insert(0u64) += u64::from(g.capacity_needed);
        }
        for (&w, &demand) in &demand_per_worker {
            prop_assert!(
                demand <= u64::from(r.capacity),
                "worker {w} overloaded: {demand} > {}",
                r.capacity
            );
        }

        // Contention pairs never share a group.
        for &(x, y) in &r.contention_pairs {
            if x < dag.node_count() && y < dag.node_count() {
                prop_assert_ne!(a.group_of[x], a.group_of[y]);
            }
        }

        // Quota: localized bytes within budget; only function producers
        // flip to MEM.
        prop_assert!(a.mem_consume <= r.quota.max(a.quota));
        for (i, &local) in a.storage_local.iter().enumerate() {
            if local {
                prop_assert!(dag.node(FunctionId::from(i)).kind.is_function());
            }
        }
    }

    /// Determinism: identical inputs and seed produce identical output.
    #[test]
    fn partition_deterministic(r in dag_strategy()) {
        let Some(dag) = build(&r) else { return Ok(()); };
        let workers: Vec<WorkerInfo> = (0..r.workers)
            .map(|i| WorkerInfo::new(NodeId::new(i + 1), r.capacity))
            .collect();
        let metrics = RuntimeMetrics::initial(&dag);
        let run = || {
            let mut rng = SimRng::seed_from(r.seed);
            GraphScheduler::default().partition(
                &dag, &workers, &metrics, &ContentionSet::default(), r.quota, &mut rng,
            )
        };
        prop_assert_eq!(run(), run());
    }
}
