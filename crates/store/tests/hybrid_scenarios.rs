//! Multi-workflow / multi-invocation scenarios across the storage stack:
//! the FaaStore policy, the budgeted memstore, and the remote catalog
//! working together the way the cluster drives them.

use faasflow_sim::{FunctionId, InvocationId, NodeId, WorkflowId};
use faasflow_store::{quota, DataKey, FaaStore, Placement, RemoteStore, StorageType};
use faasflow_wdl::{DagParser, FunctionProfile, Step, Workflow};

const HERE: NodeId = NodeId::new(1);

fn key(wf: u32, inv: u32, f: u32) -> DataKey {
    DataKey::new(
        WorkflowId::new(wf),
        InvocationId::new(inv),
        FunctionId::new(f),
    )
}

#[test]
fn workflows_compete_only_within_their_own_budgets() {
    let mut fs = FaaStore::new(true);
    fs.memstore_mut().set_budget(WorkflowId::new(0), 10 << 20);
    fs.memstore_mut().set_budget(WorkflowId::new(1), 1 << 20);
    // Workflow 0 fills its budget...
    assert_eq!(
        fs.decide_put(key(0, 0, 0), 10 << 20, StorageType::Mem, HERE, &[HERE]),
        Placement::LocalMem
    );
    // ...which must not affect workflow 1's small budget.
    assert_eq!(
        fs.decide_put(key(1, 0, 0), 1 << 20, StorageType::Mem, HERE, &[HERE]),
        Placement::LocalMem
    );
    // But workflow 1 cannot borrow workflow 0's remaining space.
    assert_eq!(
        fs.decide_put(key(1, 0, 1), 1, StorageType::Mem, HERE, &[HERE]),
        Placement::Remote
    );
}

#[test]
fn concurrent_invocations_share_one_budget() {
    // Two in-flight invocations of one workflow contend for the reclaimed
    // quota; releasing the first frees space for the third.
    let mut fs = FaaStore::new(true);
    let wf = WorkflowId::new(0);
    fs.memstore_mut().set_budget(wf, 8 << 20);
    assert_eq!(
        fs.decide_put(key(0, 0, 0), 5 << 20, StorageType::Mem, HERE, &[HERE]),
        Placement::LocalMem
    );
    assert_eq!(
        fs.decide_put(key(0, 1, 0), 5 << 20, StorageType::Mem, HERE, &[HERE]),
        Placement::Remote,
        "second invocation overflows the shared budget"
    );
    assert_eq!(fs.release_invocation(wf, InvocationId::new(0)), 5 << 20);
    assert_eq!(
        fs.decide_put(key(0, 2, 0), 5 << 20, StorageType::Mem, HERE, &[HERE]),
        Placement::LocalMem,
        "released budget is reusable"
    );
}

#[test]
fn remote_store_serves_what_faastore_rejects() {
    let mut fs = FaaStore::new(true);
    let mut db = RemoteStore::default();
    fs.memstore_mut().set_budget(WorkflowId::new(0), 1 << 20);
    let big = key(0, 0, 0);
    let placement = fs.decide_put(big, 4 << 20, StorageType::Mem, HERE, &[HERE]);
    assert_eq!(placement, Placement::Remote);
    // The cluster would register the object remotely:
    db.put(big, 4 << 20);
    // Consumer path: local miss, remote hit.
    assert_eq!(fs.read_local(big), None);
    let (bytes, _) = db.read(big).expect("remote serves the object");
    assert_eq!(bytes, 4 << 20);
    assert_eq!(fs.remote_read_count(), 1);
}

#[test]
fn quota_equations_bound_every_runtime_budget() {
    // Whatever subset of nodes lands on a worker, the sum of subset quotas
    // over any partition of the nodes equals the workflow quota — budgets
    // can never over-commit the reclaimed memory.
    let wf = Workflow::steps(
        "q",
        Step::sequence(vec![
            Step::task("a", FunctionProfile::with_millis(1, 0).peak_mem(64 << 20)),
            Step::foreach(
                "b",
                FunctionProfile::with_millis(1, 0).peak_mem(96 << 20),
                4,
            ),
            Step::task("c", FunctionProfile::with_millis(1, 0).peak_mem(128 << 20)),
        ]),
    );
    let dag = DagParser::default().parse(&wf).expect("parses");
    let mu = 32 << 20;
    let total = quota::workflow_quota(&dag, mu);
    let ids: Vec<FunctionId> = dag.nodes().iter().map(|n| n.id).collect();
    for split in 0..=ids.len() {
        let left = quota::subset_quota(&dag, ids[..split].iter().copied(), mu);
        let right = quota::subset_quota(&dag, ids[split..].iter().copied(), mu);
        assert_eq!(left + right, total, "split at {split}");
    }
}

#[test]
fn per_invocation_cleanup_is_complete_across_both_stores() {
    let mut fs = FaaStore::new(true);
    let mut db = RemoteStore::default();
    let wf = WorkflowId::new(0);
    fs.memstore_mut().set_budget(wf, 64 << 20);
    for inv in 0..4u32 {
        for f in 0..3u32 {
            let k = key(0, inv, f);
            if fs.decide_put(k, 1 << 20, StorageType::Mem, HERE, &[HERE]) == Placement::Remote {
                db.put(k, 1 << 20);
            }
        }
    }
    for inv in 0..4u32 {
        fs.release_invocation(wf, InvocationId::new(inv));
        db.release_invocation(InvocationId::new(inv));
    }
    assert_eq!(fs.memstore().object_count(), 0);
    assert_eq!(db.object_count(), 0);
    assert_eq!(fs.memstore().used(wf), 0);
}
