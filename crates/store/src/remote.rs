//! The remote key-value store (CouchDB stand-in).
//!
//! "In production serverless platforms, users often rely on additional
//! database storage services for temporary data storage and delivery"
//! (§1). The paper deploys CouchDB 3.1.1 on a dedicated storage node; every
//! data-shipping transfer (§2.4) is a write into it followed by one read
//! per consumer.
//!
//! The store itself tracks object sizes and charges a fixed per-operation
//! overhead (request parsing, MVCC bookkeeping); the bytes travel over the
//! simulated network as flows created by the cluster world, so bandwidth
//! contention at the storage node emerges naturally.

use std::collections::HashMap;

use faasflow_sim::stats::Counter;
use faasflow_sim::{InvocationId, SimDuration};
use serde::{Deserialize, Serialize};

use crate::keys::DataKey;

/// Remote store parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RemoteStoreConfig {
    /// Server-side overhead per put (CouchDB document insert).
    pub put_overhead: SimDuration,
    /// Server-side overhead per get.
    pub get_overhead: SimDuration,
}

impl Default for RemoteStoreConfig {
    fn default() -> Self {
        RemoteStoreConfig {
            put_overhead: SimDuration::from_millis(3),
            get_overhead: SimDuration::from_millis(2),
        }
    }
}

/// The storage-node object catalog.
///
/// ```
/// use faasflow_store::{RemoteStore, DataKey};
/// use faasflow_sim::{WorkflowId, InvocationId, FunctionId};
///
/// let mut db = RemoteStore::default();
/// let key = DataKey::new(WorkflowId::new(0), InvocationId::new(0), FunctionId::new(1));
/// db.put(key, 1024);
/// assert_eq!(db.get(key), Some(1024));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RemoteStore {
    config: RemoteStoreConfig,
    objects: HashMap<DataKey, u64>,
    bytes_written: Counter,
    bytes_read: Counter,
    puts: Counter,
    gets: Counter,
}

impl RemoteStore {
    /// Creates a store with explicit configuration.
    pub fn new(config: RemoteStoreConfig) -> Self {
        RemoteStore {
            config,
            ..RemoteStore::default()
        }
    }

    /// The configured per-operation overheads.
    pub fn config(&self) -> RemoteStoreConfig {
        self.config
    }

    /// Stores (or overwrites) an object and returns the server-side
    /// processing latency to charge.
    pub fn put(&mut self, key: DataKey, bytes: u64) -> SimDuration {
        self.objects.insert(key, bytes);
        self.bytes_written.add(bytes);
        self.puts.inc();
        self.config.put_overhead
    }

    /// Size of a stored object, or `None` when absent. Does not charge
    /// latency — use [`RemoteStore::read`] on the serving path.
    pub fn get(&self, key: DataKey) -> Option<u64> {
        self.objects.get(&key).copied()
    }

    /// Reads an object for serving: returns its size and the server-side
    /// latency to charge, or `None` when absent.
    pub fn read(&mut self, key: DataKey) -> Option<(u64, SimDuration)> {
        let bytes = self.objects.get(&key).copied()?;
        self.bytes_read.add(bytes);
        self.gets.inc();
        Some((bytes, self.config.get_overhead))
    }

    /// Deletes one object; returns its size if it existed.
    pub fn delete(&mut self, key: DataKey) -> Option<u64> {
        self.objects.remove(&key)
    }

    /// Drops every object of one invocation (end-of-invocation cleanup).
    /// Returns the number of bytes released.
    pub fn release_invocation(&mut self, invocation: InvocationId) -> u64 {
        let mut released = 0;
        self.objects.retain(|k, v| {
            if k.invocation == invocation {
                released += *v;
                false
            } else {
                true
            }
        });
        released
    }

    /// Number of stored objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.objects.values().sum()
    }

    /// Total bytes ever written.
    pub fn total_bytes_written(&self) -> u64 {
        self.bytes_written.get()
    }

    /// Total bytes ever read.
    pub fn total_bytes_read(&self) -> u64 {
        self.bytes_read.get()
    }

    /// Total put operations.
    pub fn put_count(&self) -> u64 {
        self.puts.get()
    }

    /// Total read operations.
    pub fn get_count(&self) -> u64 {
        self.gets.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasflow_sim::{FunctionId, WorkflowId};

    fn key(inv: u32, f: u32) -> DataKey {
        DataKey::new(
            WorkflowId::new(0),
            InvocationId::new(inv),
            FunctionId::new(f),
        )
    }

    #[test]
    fn put_read_delete_round_trip() {
        let mut db = RemoteStore::default();
        let overhead = db.put(key(0, 1), 4096);
        assert_eq!(overhead, SimDuration::from_millis(3));
        let (bytes, get_overhead) = db.read(key(0, 1)).expect("present");
        assert_eq!(bytes, 4096);
        assert_eq!(get_overhead, SimDuration::from_millis(2));
        assert_eq!(db.delete(key(0, 1)), Some(4096));
        assert_eq!(db.read(key(0, 1)), None);
    }

    #[test]
    fn overwrite_replaces_size() {
        let mut db = RemoteStore::default();
        db.put(key(0, 1), 100);
        db.put(key(0, 1), 300);
        assert_eq!(db.get(key(0, 1)), Some(300));
        assert_eq!(db.object_count(), 1);
        assert_eq!(db.total_bytes_written(), 400, "both writes counted");
    }

    #[test]
    fn release_invocation_scopes_cleanup() {
        let mut db = RemoteStore::default();
        db.put(key(0, 1), 10);
        db.put(key(0, 2), 20);
        db.put(key(1, 1), 40);
        assert_eq!(db.release_invocation(InvocationId::new(0)), 30);
        assert_eq!(db.object_count(), 1);
        assert_eq!(db.resident_bytes(), 40);
    }

    #[test]
    fn read_accounting_accumulates() {
        let mut db = RemoteStore::default();
        db.put(key(0, 1), 100);
        db.read(key(0, 1));
        db.read(key(0, 1));
        assert_eq!(db.total_bytes_read(), 200);
        assert_eq!(db.get_count(), 2);
        assert_eq!(db.put_count(), 1);
    }
}
