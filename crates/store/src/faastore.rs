//! FaaStore — the adaptive hybrid storage library (§3.2).
//!
//! > Through *FaaStore*, each worker node can independently localize and
//! > manage the workflow data movement [...] *FaaStore* will inspect
//! > whether successors of this function locate on the same node, and
//! > accordingly select the appropriate data storage.
//!
//! One [`FaaStore`] instance runs on each worker. When a function's output
//! is ready the engine asks for a placement decision; the answer is local
//! memory exactly when
//!
//! 1. FaaStore is enabled (the FaaSFlow-FaaStore configurations of §5),
//! 2. the partitioner marked the producer `StorageType::Mem` (Algorithm 1
//!    lines 13–17),
//! 3. every consumer is co-located with the producer, and
//! 4. the workflow's reclaimed-memory quota admits the object.
//!
//! Everything else falls back to the remote store, matching the paper's
//! default path.

use faasflow_sim::stats::Counter;
use faasflow_sim::{InvocationId, NodeId, WorkflowId};
use serde::{Deserialize, Serialize};

use crate::keys::DataKey;
use crate::memstore::MemStore;

/// The per-function storage class chosen by the partitioner — Algorithm 1's
/// `f.StorageType`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum StorageType {
    /// Output goes to the remote database (the initial state, line 2).
    #[default]
    Db,
    /// Output may reside in local memory (set when the edge was localised
    /// within the quota, line 17).
    Mem,
}

/// Where an output object was placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Cached in this worker's memory; consumers read at memory speed.
    LocalMem,
    /// Shipped to the remote store over the network.
    Remote,
}

/// The adaptive storage library instance of one worker node.
///
/// ```
/// use faasflow_store::{FaaStore, StorageType, Placement, DataKey};
/// use faasflow_sim::{NodeId, WorkflowId, InvocationId, FunctionId};
///
/// let mut fs = FaaStore::new(true);
/// let wf = WorkflowId::new(0);
/// fs.memstore_mut().set_budget(wf, 1 << 20);
/// let key = DataKey::new(wf, InvocationId::new(0), FunctionId::new(0));
/// let here = NodeId::new(1);
/// let p = fs.decide_put(key, 1000, StorageType::Mem, here, &[here, here]);
/// assert_eq!(p, Placement::LocalMem);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaaStore {
    enabled: bool,
    memstore: MemStore,
    local_puts: Counter,
    remote_puts: Counter,
    local_hits: Counter,
    remote_reads: Counter,
}

impl FaaStore {
    /// Creates the library; `enabled == false` reproduces plain FaaSFlow
    /// (every transfer through the remote store).
    pub fn new(enabled: bool) -> Self {
        FaaStore {
            enabled,
            ..FaaStore::default()
        }
    }

    /// Whether local placement is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The underlying budgeted store.
    pub fn memstore(&self) -> &MemStore {
        &self.memstore
    }

    /// Mutable access to the underlying store (budget management).
    pub fn memstore_mut(&mut self) -> &mut MemStore {
        &mut self.memstore
    }

    /// Chooses and performs the placement of a produced object.
    ///
    /// `consumer_nodes` are the scheduled locations of every consumer of
    /// this output; an empty slice means the output is the workflow result
    /// and must reach the remote store regardless.
    pub fn decide_put(
        &mut self,
        key: DataKey,
        bytes: u64,
        storage_type: StorageType,
        producer_node: NodeId,
        consumer_nodes: &[NodeId],
    ) -> Placement {
        let co_located =
            !consumer_nodes.is_empty() && consumer_nodes.iter().all(|&n| n == producer_node);
        if self.enabled
            && storage_type == StorageType::Mem
            && co_located
            && self.memstore.try_put(key, bytes)
        {
            self.local_puts.inc();
            Placement::LocalMem
        } else {
            self.remote_puts.inc();
            Placement::Remote
        }
    }

    /// Attempts a local read; `Some(bytes)` is a quota-memory hit.
    pub fn read_local(&mut self, key: DataKey) -> Option<u64> {
        let hit = self.memstore.get(key);
        if hit.is_some() {
            self.local_hits.inc();
        } else {
            self.remote_reads.inc();
        }
        hit
    }

    /// Releases everything an invocation cached (end-of-invocation state
    /// recycling, §4.2.1). Returns bytes released.
    pub fn release_invocation(&mut self, wf: WorkflowId, invocation: InvocationId) -> u64 {
        self.memstore.release_invocation(wf, invocation)
    }

    /// Simulates the worker crashing: all locally cached objects are lost
    /// (budgets and history survive). Returns bytes lost.
    pub fn crash(&mut self) -> u64 {
        self.memstore.wipe()
    }

    /// Outputs placed in local memory.
    pub fn local_put_count(&self) -> u64 {
        self.local_puts.get()
    }

    /// Outputs shipped to the remote store.
    pub fn remote_put_count(&self) -> u64 {
        self.remote_puts.get()
    }

    /// Reads served from local memory.
    pub fn local_hit_count(&self) -> u64 {
        self.local_hits.get()
    }

    /// Reads that had to go remote.
    pub fn remote_read_count(&self) -> u64 {
        self.remote_reads.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasflow_sim::FunctionId;

    fn key(f: u32) -> DataKey {
        DataKey::new(WorkflowId::new(0), InvocationId::new(0), FunctionId::new(f))
    }

    fn budgeted(enabled: bool) -> FaaStore {
        let mut fs = FaaStore::new(enabled);
        fs.memstore_mut().set_budget(WorkflowId::new(0), 1 << 20);
        fs
    }

    const HERE: NodeId = NodeId::new(3);
    const THERE: NodeId = NodeId::new(4);

    #[test]
    fn colocated_mem_edge_goes_local() {
        let mut fs = budgeted(true);
        let p = fs.decide_put(key(0), 100, StorageType::Mem, HERE, &[HERE]);
        assert_eq!(p, Placement::LocalMem);
        assert_eq!(fs.read_local(key(0)), Some(100));
        assert_eq!(fs.local_hit_count(), 1);
    }

    #[test]
    fn remote_consumer_forces_db() {
        let mut fs = budgeted(true);
        let p = fs.decide_put(key(0), 100, StorageType::Mem, HERE, &[HERE, THERE]);
        assert_eq!(p, Placement::Remote);
    }

    #[test]
    fn db_storage_type_forces_db_even_when_colocated() {
        let mut fs = budgeted(true);
        let p = fs.decide_put(key(0), 100, StorageType::Db, HERE, &[HERE]);
        assert_eq!(p, Placement::Remote);
    }

    #[test]
    fn workflow_result_goes_remote() {
        let mut fs = budgeted(true);
        let p = fs.decide_put(key(0), 100, StorageType::Mem, HERE, &[]);
        assert_eq!(p, Placement::Remote);
    }

    #[test]
    fn disabled_library_is_pure_remote() {
        let mut fs = budgeted(false);
        let p = fs.decide_put(key(0), 100, StorageType::Mem, HERE, &[HERE]);
        assert_eq!(p, Placement::Remote);
        assert_eq!(fs.local_put_count(), 0);
        assert_eq!(fs.remote_put_count(), 1);
    }

    #[test]
    fn quota_exhaustion_falls_back_to_remote() {
        let mut fs = FaaStore::new(true);
        fs.memstore_mut().set_budget(WorkflowId::new(0), 150);
        assert_eq!(
            fs.decide_put(key(0), 100, StorageType::Mem, HERE, &[HERE]),
            Placement::LocalMem
        );
        assert_eq!(
            fs.decide_put(key(1), 100, StorageType::Mem, HERE, &[HERE]),
            Placement::Remote,
            "second object exceeds the reclaimed quota"
        );
    }

    #[test]
    fn release_invocation_frees_quota() {
        let mut fs = FaaStore::new(true);
        fs.memstore_mut().set_budget(WorkflowId::new(0), 100);
        fs.decide_put(key(0), 100, StorageType::Mem, HERE, &[HERE]);
        assert_eq!(
            fs.release_invocation(WorkflowId::new(0), InvocationId::new(0)),
            100
        );
        assert_eq!(
            fs.decide_put(key(1), 100, StorageType::Mem, HERE, &[HERE]),
            Placement::LocalMem
        );
    }

    #[test]
    fn miss_counts_as_remote_read() {
        let mut fs = budgeted(true);
        assert_eq!(fs.read_local(key(9)), None);
        assert_eq!(fs.remote_read_count(), 1);
    }
}
