//! Append-only engine journal log (the storage half of crash recovery).
//!
//! Engines write-ahead their workflow transitions into a per-engine log
//! that lives on the simulated store, so a restarted engine can replay to
//! a consistent point (the Durable Functions / Netherite recipe). This
//! module models only the *storage mechanics* — append durability and
//! crash truncation; what the records mean is the engine's business
//! (`faasflow-core::journal`).
//!
//! Appends are asynchronous write-behind: the caller hands us the record
//! together with the simulated time at which the backing store will have
//! made it durable. A crash at time `t` keeps exactly the records whose
//! durability point is `<= t`; everything later is torn off the tail, the
//! same way a real log loses its unfsynced suffix.

use faasflow_sim::stats::Counter;
use faasflow_sim::SimTime;

/// One durable-tail log. Generic over the record type so the storage
/// crate stays independent of engine semantics.
#[derive(Debug, Clone, Default)]
pub struct JournalLog<R> {
    records: Vec<(SimTime, R)>,
    appends: Counter,
    lost_appends: Counter,
    truncated: Counter,
}

impl<R> JournalLog<R> {
    /// Creates an empty log.
    pub fn new() -> Self {
        JournalLog {
            records: Vec::new(),
            appends: Counter::default(),
            lost_appends: Counter::default(),
            truncated: Counter::default(),
        }
    }

    /// Appends a record that becomes durable at `durable_at`. Records must
    /// be appended in non-decreasing durability order (the engine issues
    /// them in simulated-time order).
    pub fn append(&mut self, durable_at: SimTime, record: R) {
        debug_assert!(
            self.records.last().is_none_or(|(t, _)| *t <= durable_at),
            "journal appends must be ordered by durability time"
        );
        self.records.push((durable_at, record));
        self.appends.inc();
    }

    /// Records an append that never reached the store (e.g. issued while
    /// the storage node was blacked out). Only counted — the data is gone.
    pub fn append_lost(&mut self) {
        self.lost_appends.inc();
    }

    /// Crash at time `now`: tears off every record not yet durable and
    /// returns how many were lost.
    pub fn crash(&mut self, now: SimTime) -> usize {
        let keep = self.records.partition_point(|(t, _)| *t <= now);
        let torn = self.records.len() - keep;
        self.records.truncate(keep);
        self.truncated.add(torn as u64);
        torn
    }

    /// The durable records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &R> {
        self.records.iter().map(|(_, r)| r)
    }

    /// Number of records currently in the log (durable by construction
    /// after any [`JournalLog::crash`]).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total appends ever issued (including ones later torn off by crash).
    pub fn append_count(&self) -> u64 {
        self.appends.get()
    }

    /// Appends dropped because the store was unreachable.
    pub fn lost_append_count(&self) -> u64 {
        self.lost_appends.get()
    }

    /// Records torn off by crashes (issued but not durable in time).
    pub fn torn_count(&self) -> u64 {
        self.truncated.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasflow_sim::SimDuration;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn crash_tears_off_the_undurable_tail() {
        let mut log = JournalLog::new();
        log.append(at(10), "a");
        log.append(at(20), "b");
        log.append(at(30), "c");
        assert_eq!(log.crash(at(20)), 1);
        assert_eq!(log.records().copied().collect::<Vec<_>>(), vec!["a", "b"]);
        assert_eq!(log.torn_count(), 1);
        assert_eq!(log.append_count(), 3);
    }

    #[test]
    fn crash_at_exact_durability_point_keeps_the_record() {
        let mut log = JournalLog::new();
        log.append(at(10), 1u32);
        assert_eq!(log.crash(at(10)), 0);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn lost_appends_are_counted_not_stored() {
        let mut log: JournalLog<u32> = JournalLog::new();
        log.append_lost();
        log.append_lost();
        assert!(log.is_empty());
        assert_eq!(log.lost_append_count(), 2);
    }
}
