//! Object keys for intermediate workflow data.

use faasflow_sim::{FunctionId, InvocationId, WorkflowId};
use serde::{Deserialize, Serialize};

/// Identifies one producer's output object within one invocation.
///
/// The paper's user interface declares "the *keys* in the workflow
/// definition file" (§3.2); in the reproduction a key is fully determined
/// by (workflow, invocation, producer), which is what both stores index by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DataKey {
    /// Owning workflow.
    pub workflow: WorkflowId,
    /// Owning invocation.
    pub invocation: InvocationId,
    /// The function node that produced the object.
    pub producer: FunctionId,
}

impl DataKey {
    /// Creates a key.
    pub fn new(workflow: WorkflowId, invocation: InvocationId, producer: FunctionId) -> Self {
        DataKey {
            workflow,
            invocation,
            producer,
        }
    }
}

impl std::fmt::Display for DataKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}/{}", self.workflow, self.invocation, self.producer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_path_like() {
        let k = DataKey::new(WorkflowId::new(1), InvocationId::new(2), FunctionId::new(3));
        assert_eq!(k.to_string(), "wf1/inv2/fn3");
    }
}
