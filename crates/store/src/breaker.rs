//! Circuit breaker for the remote store.
//!
//! The remote store is the cluster's only shared dependency; when it
//! degrades (a `StorageFault` blackout/brownout, or simply saturation
//! latency), every worker that keeps hammering it both wastes its own
//! time and prolongs the outage. The breaker is the standard three-state
//! machine — closed → open on consecutive failures or slow calls →
//! half-open probe after a cool-down — adapted to the simulation's
//! determinism contract: the only randomness is an optional jitter on
//! the open-window length, drawn from the cluster's seeded RNG and only
//! on the closed/half-open → open transition, so a disabled or
//! never-tripping breaker consumes zero RNG draws.

use faasflow_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// The classic three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Healthy: every call goes through.
    Closed,
    /// Tripped: calls fail fast until the open window elapses.
    Open,
    /// Cool-down elapsed: a limited number of probe calls go through;
    /// one failure re-opens, enough successes close.
    HalfOpen,
}

impl BreakerState {
    /// Numeric encoding for counter tracks (0 = closed, 1 = half-open,
    /// 2 = open) — higher means less healthy.
    pub fn as_level(self) -> u32 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        }
    }
}

/// What the breaker tells a caller about to issue a remote-store call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Closed: proceed normally.
    Allow,
    /// Half-open: proceed, but this call is a probe whose outcome decides
    /// the next state.
    Probe,
    /// Open: do not issue the call; degrade (serve locally or back off).
    FastFail,
}

/// Breaker thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Consecutive failed (or slow) calls that trip the breaker.
    pub failure_threshold: u32,
    /// A call slower than this counts as a failure even if it succeeded
    /// (brownouts degrade latency without returning errors).
    pub latency_threshold: SimDuration,
    /// How long the breaker stays open before probing.
    pub open_duration: SimDuration,
    /// Successful probes required to close from half-open.
    pub half_open_probes: u32,
    /// Relative jitter on `open_duration` in `[0, 1)`; the window is
    /// scaled by a factor drawn uniformly from `[1-jitter, 1+jitter]`
    /// so synchronized trips across workers don't re-probe in lockstep.
    pub jitter: f64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            latency_threshold: SimDuration::from_millis(250),
            open_duration: SimDuration::from_secs(1),
            half_open_probes: 3,
            jitter: 0.1,
        }
    }
}

impl BreakerConfig {
    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when a field is out of range.
    pub fn validate(&self) -> Result<(), String> {
        if self.failure_threshold == 0 {
            return Err("breaker failure_threshold must be at least 1".into());
        }
        if self.latency_threshold <= SimDuration::ZERO {
            return Err("breaker latency_threshold must be positive".into());
        }
        if self.open_duration <= SimDuration::ZERO {
            return Err("breaker open_duration must be positive".into());
        }
        if self.half_open_probes == 0 {
            return Err("breaker half_open_probes must be at least 1".into());
        }
        if !(0.0..1.0).contains(&self.jitter) {
            return Err(format!(
                "breaker jitter must be in [0,1), got {}",
                self.jitter
            ));
        }
        Ok(())
    }
}

/// A state transition `(from, to)`, reported so the caller can trace it.
pub type BreakerTransition = (BreakerState, BreakerState);

/// The breaker state machine. Sans-IO: the caller asks [`admit`] before a
/// call and reports the outcome through [`on_result`]; both return the
/// transition they caused, if any.
///
/// [`admit`]: CircuitBreaker::admit
/// [`on_result`]: CircuitBreaker::on_result
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    open_until: SimTime,
    probe_successes: u32,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_until: SimTime::ZERO,
            probe_successes: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Asks whether a call may proceed at `now`. An open breaker whose
    /// window has elapsed moves to half-open here (and says so in the
    /// returned transition).
    pub fn admit(&mut self, now: SimTime) -> (BreakerDecision, Option<BreakerTransition>) {
        match self.state {
            BreakerState::Closed => (BreakerDecision::Allow, None),
            BreakerState::HalfOpen => (BreakerDecision::Probe, None),
            BreakerState::Open => {
                if now >= self.open_until {
                    self.state = BreakerState::HalfOpen;
                    self.probe_successes = 0;
                    (
                        BreakerDecision::Probe,
                        Some((BreakerState::Open, BreakerState::HalfOpen)),
                    )
                } else {
                    (BreakerDecision::FastFail, None)
                }
            }
        }
    }

    /// Reports the outcome of an admitted call. A success slower than the
    /// latency threshold counts as a failure. Draws from `rng` only when
    /// transitioning to open (and only if jitter is non-zero).
    pub fn on_result(
        &mut self,
        now: SimTime,
        ok: bool,
        latency: SimDuration,
        rng: &mut SimRng,
    ) -> Option<BreakerTransition> {
        let ok = ok && latency < self.config.latency_threshold;
        match self.state {
            BreakerState::Closed => {
                if ok {
                    self.consecutive_failures = 0;
                    None
                } else {
                    self.consecutive_failures += 1;
                    if self.consecutive_failures >= self.config.failure_threshold {
                        self.trip(now, rng);
                        Some((BreakerState::Closed, BreakerState::Open))
                    } else {
                        None
                    }
                }
            }
            BreakerState::HalfOpen => {
                if ok {
                    self.probe_successes += 1;
                    if self.probe_successes >= self.config.half_open_probes {
                        self.state = BreakerState::Closed;
                        self.consecutive_failures = 0;
                        Some((BreakerState::HalfOpen, BreakerState::Closed))
                    } else {
                        None
                    }
                } else {
                    self.trip(now, rng);
                    Some((BreakerState::HalfOpen, BreakerState::Open))
                }
            }
            // Results for calls admitted before the trip can still drain
            // while open; they carry no new information.
            BreakerState::Open => None,
        }
    }

    fn trip(&mut self, now: SimTime, rng: &mut SimRng) {
        self.state = BreakerState::Open;
        self.consecutive_failures = 0;
        let scale = if self.config.jitter > 0.0 {
            rng.range_f64(1.0 - self.config.jitter, 1.0 + self.config.jitter)
        } else {
            1.0
        };
        self.open_until = now + self.config.open_duration.mul_f64(scale);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            latency_threshold: SimDuration::from_millis(100),
            open_duration: SimDuration::from_secs(1),
            half_open_probes: 2,
            jitter: 0.0,
        }
    }

    fn t(secs: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(secs)
    }

    #[test]
    fn opens_after_consecutive_failures() {
        let mut rng = SimRng::seed_from(1);
        let mut b = CircuitBreaker::new(cfg());
        let fast = SimDuration::from_millis(1);
        assert_eq!(b.on_result(t(0.0), false, fast, &mut rng), None);
        assert_eq!(b.on_result(t(0.1), false, fast, &mut rng), None);
        assert_eq!(
            b.on_result(t(0.2), false, fast, &mut rng),
            Some((BreakerState::Closed, BreakerState::Open))
        );
        assert_eq!(b.admit(t(0.3)).0, BreakerDecision::FastFail);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut rng = SimRng::seed_from(1);
        let mut b = CircuitBreaker::new(cfg());
        let fast = SimDuration::from_millis(1);
        b.on_result(t(0.0), false, fast, &mut rng);
        b.on_result(t(0.1), false, fast, &mut rng);
        b.on_result(t(0.2), true, fast, &mut rng);
        b.on_result(t(0.3), false, fast, &mut rng);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn slow_success_counts_as_failure() {
        let mut rng = SimRng::seed_from(1);
        let mut b = CircuitBreaker::new(cfg());
        let slow = SimDuration::from_millis(500);
        b.on_result(t(0.0), true, slow, &mut rng);
        b.on_result(t(0.1), true, slow, &mut rng);
        assert_eq!(
            b.on_result(t(0.2), true, slow, &mut rng),
            Some((BreakerState::Closed, BreakerState::Open))
        );
    }

    #[test]
    fn open_window_elapses_into_half_open_then_closes() {
        let mut rng = SimRng::seed_from(1);
        let mut b = CircuitBreaker::new(cfg());
        let fast = SimDuration::from_millis(1);
        for _ in 0..3 {
            b.on_result(t(0.0), false, fast, &mut rng);
        }
        assert_eq!(b.admit(t(0.5)).0, BreakerDecision::FastFail);
        let (d, tr) = b.admit(t(1.5));
        assert_eq!(d, BreakerDecision::Probe);
        assert_eq!(tr, Some((BreakerState::Open, BreakerState::HalfOpen)));
        assert_eq!(b.on_result(t(1.6), true, fast, &mut rng), None);
        assert_eq!(
            b.on_result(t(1.7), true, fast, &mut rng),
            Some((BreakerState::HalfOpen, BreakerState::Closed))
        );
        assert_eq!(b.admit(t(1.8)).0, BreakerDecision::Allow);
    }

    #[test]
    fn half_open_failure_reopens() {
        let mut rng = SimRng::seed_from(1);
        let mut b = CircuitBreaker::new(cfg());
        let fast = SimDuration::from_millis(1);
        for _ in 0..3 {
            b.on_result(t(0.0), false, fast, &mut rng);
        }
        b.admit(t(1.5));
        assert_eq!(
            b.on_result(t(1.6), false, fast, &mut rng),
            Some((BreakerState::HalfOpen, BreakerState::Open))
        );
        assert_eq!(b.admit(t(1.7)).0, BreakerDecision::FastFail);
    }

    #[test]
    fn jitter_draws_only_on_trip() {
        let mut rng = SimRng::seed_from(7);
        let probe = rng.next_u64();
        let mut rng = SimRng::seed_from(7);
        let mut b = CircuitBreaker::new(BreakerConfig {
            jitter: 0.0,
            ..cfg()
        });
        let fast = SimDuration::from_millis(1);
        b.on_result(t(0.0), true, fast, &mut rng);
        b.on_result(t(0.1), false, fast, &mut rng);
        b.admit(t(0.2));
        // No trip, zero jitter → no draws consumed.
        assert_eq!(rng.next_u64(), probe);
    }

    #[test]
    fn config_validation_rejects_bad_knobs() {
        let ok = BreakerConfig::default();
        assert!(ok.validate().is_ok());
        for bad in [
            BreakerConfig {
                failure_threshold: 0,
                ..ok
            },
            BreakerConfig {
                latency_threshold: SimDuration::ZERO,
                ..ok
            },
            BreakerConfig {
                open_duration: SimDuration::ZERO,
                ..ok
            },
            BreakerConfig {
                half_open_probes: 0,
                ..ok
            },
            BreakerConfig { jitter: 1.0, ..ok },
            BreakerConfig { jitter: -0.1, ..ok },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should be rejected");
        }
    }
}
