//! The per-worker in-memory store (Redis stand-in) with per-workflow
//! budgets.
//!
//! FaaStore "sets a well-organized quota for data movement by memory
//! reclamation from the containers" (§4.3.1): the memory backing this store
//! is not extra host memory but the over-provisioned slack reclaimed from
//! the workflow's own containers. Consequently every byte cached here is
//! accounted against its workflow's budget, and exceeding the budget is
//! impossible by construction — the condition the paper needs to avoid
//! memory swap and OOM.

use std::collections::HashMap;

use faasflow_sim::stats::{Counter, Gauge};
use faasflow_sim::{InvocationId, WorkflowId};

use crate::keys::DataKey;

/// A byte-budgeted in-memory object store for one worker node.
///
/// ```
/// use faasflow_store::{MemStore, DataKey};
/// use faasflow_sim::{WorkflowId, InvocationId, FunctionId};
///
/// let mut store = MemStore::new();
/// let wf = WorkflowId::new(0);
/// store.set_budget(wf, 1000);
/// let key = DataKey::new(wf, InvocationId::new(0), FunctionId::new(1));
/// assert!(store.try_put(key, 800));
/// let too_big = DataKey::new(wf, InvocationId::new(0), FunctionId::new(2));
/// assert!(!store.try_put(too_big, 300), "would exceed the workflow quota");
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemStore {
    budgets: HashMap<WorkflowId, u64>,
    used: HashMap<WorkflowId, Gauge>,
    objects: HashMap<DataKey, u64>,
    hits: Counter,
    rejections: Counter,
    bytes_stored: Counter,
}

impl MemStore {
    /// Creates an empty store with no budgets.
    pub fn new() -> Self {
        MemStore::default()
    }

    /// Sets the workflow's byte budget on this node (the per-node share of
    /// Eq. (2)'s `Quota[G]`, established at each partition iteration).
    ///
    /// Lowering the budget below current usage is allowed: resident objects
    /// stay, but new puts are rejected until usage drains.
    pub fn set_budget(&mut self, wf: WorkflowId, bytes: u64) {
        self.budgets.insert(wf, bytes);
    }

    /// The workflow's budget (zero when unset).
    pub fn budget(&self, wf: WorkflowId) -> u64 {
        self.budgets.get(&wf).copied().unwrap_or(0)
    }

    /// Bytes currently cached for a workflow.
    pub fn used(&self, wf: WorkflowId) -> u64 {
        self.used.get(&wf).map(|g| g.get()).unwrap_or(0)
    }

    /// Peak bytes ever cached for a workflow.
    pub fn peak_used(&self, wf: WorkflowId) -> u64 {
        self.used.get(&wf).map(|g| g.peak()).unwrap_or(0)
    }

    /// Tries to cache an object within its workflow's budget. Returns
    /// `false` (and rejects) when the budget would be exceeded or the key
    /// already exists.
    pub fn try_put(&mut self, key: DataKey, bytes: u64) -> bool {
        if self.objects.contains_key(&key) {
            return false;
        }
        let budget = self.budget(key.workflow);
        let used = self.used(key.workflow);
        if used + bytes > budget {
            self.rejections.inc();
            return false;
        }
        self.objects.insert(key, bytes);
        self.used.entry(key.workflow).or_default().add(bytes);
        self.bytes_stored.add(bytes);
        true
    }

    /// Size of a cached object, counting a hit, or `None` on miss.
    pub fn get(&mut self, key: DataKey) -> Option<u64> {
        let bytes = self.objects.get(&key).copied()?;
        self.hits.inc();
        Some(bytes)
    }

    /// True when the object is cached (no hit counted).
    pub fn contains(&self, key: DataKey) -> bool {
        self.objects.contains_key(&key)
    }

    /// Removes one object, returning its size.
    pub fn delete(&mut self, key: DataKey) -> Option<u64> {
        let bytes = self.objects.remove(&key)?;
        self.used
            .get_mut(&key.workflow)
            .expect("usage tracked for stored object")
            .sub(bytes);
        Some(bytes)
    }

    /// Drops every object of one invocation — "the per-worker engine should
    /// release the *State* object at the end of each invocation" (§4.2.1),
    /// and the cached data goes with it. Returns bytes released.
    pub fn release_invocation(&mut self, wf: WorkflowId, invocation: InvocationId) -> u64 {
        let doomed: Vec<DataKey> = self
            .objects
            .keys()
            .filter(|k| k.workflow == wf && k.invocation == invocation)
            .copied()
            .collect();
        let mut released = 0;
        for key in doomed {
            released += self.delete(key).expect("key collected above");
        }
        released
    }

    /// Drops every cached object (a node crash: in-memory state is gone).
    /// Budgets and cumulative counters survive; the usage gauges drop to
    /// zero. Returns bytes lost.
    pub fn wipe(&mut self) -> u64 {
        let lost: u64 = self.objects.values().sum();
        self.objects.clear();
        for gauge in self.used.values_mut() {
            gauge.set(0);
        }
        lost
    }

    /// Objects currently cached.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Cache hits served.
    pub fn hit_count(&self) -> u64 {
        self.hits.get()
    }

    /// Puts rejected for lack of budget.
    pub fn rejection_count(&self) -> u64 {
        self.rejections.get()
    }

    /// Total bytes ever stored.
    pub fn total_bytes_stored(&self) -> u64 {
        self.bytes_stored.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasflow_sim::FunctionId;

    fn key(wf: u32, inv: u32, f: u32) -> DataKey {
        DataKey::new(
            WorkflowId::new(wf),
            InvocationId::new(inv),
            FunctionId::new(f),
        )
    }

    #[test]
    fn wipe_loses_objects_but_keeps_budgets() {
        let mut s = MemStore::new();
        s.set_budget(WorkflowId::new(0), 100);
        assert!(s.try_put(key(0, 0, 0), 70));
        assert_eq!(s.wipe(), 70);
        assert_eq!(s.object_count(), 0);
        assert_eq!(s.used(WorkflowId::new(0)), 0);
        assert_eq!(s.budget(WorkflowId::new(0)), 100);
        assert!(s.try_put(key(0, 0, 1), 100), "budget fully available again");
    }

    #[test]
    fn budget_enforced_per_workflow() {
        let mut s = MemStore::new();
        s.set_budget(WorkflowId::new(0), 100);
        s.set_budget(WorkflowId::new(1), 50);
        assert!(s.try_put(key(0, 0, 0), 80));
        assert!(!s.try_put(key(0, 0, 1), 30), "wf0 over budget");
        assert!(s.try_put(key(1, 0, 0), 50), "wf1 has its own budget");
        assert_eq!(s.rejection_count(), 1);
    }

    #[test]
    fn unbudgeted_workflow_rejects_everything() {
        let mut s = MemStore::new();
        assert!(!s.try_put(key(9, 0, 0), 1));
    }

    #[test]
    fn delete_returns_budget() {
        let mut s = MemStore::new();
        s.set_budget(WorkflowId::new(0), 100);
        assert!(s.try_put(key(0, 0, 0), 100));
        assert_eq!(s.delete(key(0, 0, 0)), Some(100));
        assert!(s.try_put(key(0, 0, 1), 100), "budget available again");
        assert_eq!(s.peak_used(WorkflowId::new(0)), 100);
    }

    #[test]
    fn duplicate_put_is_rejected_without_double_accounting() {
        let mut s = MemStore::new();
        s.set_budget(WorkflowId::new(0), 100);
        assert!(s.try_put(key(0, 0, 0), 40));
        assert!(!s.try_put(key(0, 0, 0), 40));
        assert_eq!(s.used(WorkflowId::new(0)), 40);
    }

    #[test]
    fn release_invocation_is_scoped() {
        let mut s = MemStore::new();
        s.set_budget(WorkflowId::new(0), 1000);
        s.try_put(key(0, 0, 0), 10);
        s.try_put(key(0, 0, 1), 20);
        s.try_put(key(0, 1, 0), 40);
        assert_eq!(
            s.release_invocation(WorkflowId::new(0), InvocationId::new(0)),
            30
        );
        assert_eq!(s.object_count(), 1);
        assert_eq!(s.used(WorkflowId::new(0)), 40);
    }

    #[test]
    fn hits_counted_only_on_get() {
        let mut s = MemStore::new();
        s.set_budget(WorkflowId::new(0), 100);
        s.try_put(key(0, 0, 0), 10);
        assert!(s.contains(key(0, 0, 0)));
        assert_eq!(s.hit_count(), 0);
        assert_eq!(s.get(key(0, 0, 0)), Some(10));
        assert_eq!(s.hit_count(), 1);
        assert_eq!(s.get(key(0, 0, 9)), None);
        assert_eq!(s.hit_count(), 1);
    }

    #[test]
    fn budget_shrink_below_usage_blocks_new_puts() {
        let mut s = MemStore::new();
        s.set_budget(WorkflowId::new(0), 100);
        s.try_put(key(0, 0, 0), 80);
        s.set_budget(WorkflowId::new(0), 50);
        assert!(!s.try_put(key(0, 0, 1), 1));
        assert_eq!(s.used(WorkflowId::new(0)), 80, "resident objects stay");
    }
}
