//! Equations (1) and (2): the adaptive in-memory storage quota.
//!
//! > For a function that uses the memory of size S at most in the history,
//! > we reclaim the memory of size `Mem(v) − S − μ` from it. [...] Each
//! > function node will over-provision `O(v_i)` for FaaStore to reclaim by
//! > Equation (1). Equation (2) calculates the in-memory quota by
//! > reclaiming memory from all function nodes in the workflow. (§4.3.1)
//!
//! ```text
//! O(v_i)        = max{ Mem(v_i) − S − μ, 0 } · Map(v_i)          (1)
//! Quota[G(V,E)] = Σ_{i=1..n} O(v_i)                              (2)
//! ```

use faasflow_sim::FunctionId;
use faasflow_wdl::{NodeKind, WorkflowDag};

/// Default safety reserve μ left in each container for occasional
/// requirements: 32 MB.
pub const DEFAULT_MU: u64 = 32 << 20;

/// Equation (1): the memory FaaStore may reclaim from one function node.
///
/// `Map(v)` is the node's executor map — its `parallelism` for foreach
/// nodes, 1 otherwise (§4.1.2). Virtual nodes contribute nothing.
pub fn node_overprovision(dag: &WorkflowDag, node: FunctionId, mu: u64) -> u64 {
    let n = dag.node(node);
    match &n.kind {
        NodeKind::Function(profile) => profile.overprovisioned_bytes(mu) * u64::from(n.parallelism),
        _ => 0,
    }
}

/// Equation (2): the workflow's total in-memory quota.
pub fn workflow_quota(dag: &WorkflowDag, mu: u64) -> u64 {
    (0..dag.node_count())
        .map(|i| node_overprovision(dag, FunctionId::from(i), mu))
        .sum()
}

/// The share of Eq. (2) attributable to a subset of nodes — used to budget
/// each worker's [`crate::MemStore`] with the quota of the functions the
/// partitioner placed there.
pub fn subset_quota(
    dag: &WorkflowDag,
    nodes: impl IntoIterator<Item = FunctionId>,
    mu: u64,
) -> u64 {
    nodes
        .into_iter()
        .map(|v| node_overprovision(dag, v, mu))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasflow_wdl::{DagParser, FunctionProfile, Step, Workflow};

    fn parse(step: Step) -> WorkflowDag {
        DagParser::default()
            .parse(&Workflow::steps("q", step))
            .expect("valid workflow")
    }

    #[test]
    fn equation_one_scales_with_map() {
        // foreach with fanout 4: Map(v) = 4.
        let dag = parse(Step::foreach(
            "fe",
            FunctionProfile::with_millis(1, 0).peak_mem(96 << 20),
            4,
        ));
        let fe = dag.nodes().iter().find(|n| n.name == "fe").unwrap().id;
        // O = (256 - 96 - 32) MB * 4 = 512 MB.
        assert_eq!(node_overprovision(&dag, fe, DEFAULT_MU), (128 << 20) * 4);
    }

    #[test]
    fn virtual_nodes_contribute_nothing() {
        let dag = parse(Step::parallel(vec![
            Step::task("a", FunctionProfile::with_millis(1, 0).peak_mem(224 << 20)),
            Step::task("b", FunctionProfile::with_millis(1, 0).peak_mem(128 << 20)),
        ]));
        // a: 256-224-32 = 0; b: 256-128-32 = 96MB; brackets: 0.
        assert_eq!(workflow_quota(&dag, DEFAULT_MU), 96 << 20);
    }

    #[test]
    fn pessimistic_reclaim_clamps_at_zero() {
        let dag = parse(Step::task(
            "tight",
            FunctionProfile::with_millis(1, 0).peak_mem(250 << 20),
        ));
        assert_eq!(workflow_quota(&dag, DEFAULT_MU), 0);
    }

    #[test]
    fn subset_quota_partitions_the_total() {
        let dag = parse(Step::sequence(vec![
            Step::task("a", FunctionProfile::with_millis(1, 0).peak_mem(64 << 20)),
            Step::task("b", FunctionProfile::with_millis(1, 0).peak_mem(64 << 20)),
        ]));
        let ids: Vec<FunctionId> = dag.nodes().iter().map(|n| n.id).collect();
        let total = workflow_quota(&dag, DEFAULT_MU);
        let half = subset_quota(&dag, ids[..1].iter().copied(), DEFAULT_MU);
        assert_eq!(half * 2, total);
    }
}
