//! # faasflow-store
//!
//! Storage substrates of the FaaSFlow reproduction, plus **FaaStore**, the
//! paper's adaptive hybrid storage library (§3.2, §4.3).
//!
//! * [`RemoteStore`] — the CouchDB stand-in on the storage node: a
//!   size-tracking object catalog with per-operation overheads. Actual
//!   byte movement is a network flow created by the cluster simulation.
//! * [`MemStore`] — the Redis stand-in on each worker: byte-budgeted,
//!   per-workflow quotas (FaaStore never takes memory beyond what it
//!   reclaimed from containers, §4.3.1).
//! * [`FaaStore`] — the placement policy: keep an output in local memory
//!   when its consumers are co-located, the partitioner marked the edge
//!   `MEM`, and the quota admits it; fall back to the remote store
//!   otherwise.
//! * [`quota`] — Equations (1) and (2): the adaptive in-memory storage
//!   quota reclaimed from over-provisioned containers.
//!
//! ```
//! use faasflow_store::quota::workflow_quota;
//! use faasflow_wdl::{DagParser, FunctionProfile, Step, Workflow};
//!
//! let wf = Workflow::steps(
//!     "q",
//!     Step::task("a", FunctionProfile::with_millis(5, 0).peak_mem(64 << 20)),
//! );
//! let dag = DagParser::default().parse(&wf)?;
//! // O(a) = 256MB - 64MB - 32MB slack = 160MB, Map(a) = 1.
//! assert_eq!(workflow_quota(&dag, 32 << 20), 160 << 20);
//! # Ok::<(), faasflow_wdl::WdlError>(())
//! ```

pub mod breaker;
pub mod faastore;
pub mod journal;
pub mod keys;
pub mod memstore;
pub mod quota;
pub mod remote;

pub use breaker::{BreakerConfig, BreakerDecision, BreakerState, CircuitBreaker};
pub use faastore::{FaaStore, Placement, StorageType};
pub use journal::JournalLog;
pub use keys::DataKey;
pub use memstore::MemStore;
pub use remote::{RemoteStore, RemoteStoreConfig};
