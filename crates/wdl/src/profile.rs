//! Behavioural profile of a serverless function.
//!
//! The engines never execute user code; a function is fully described by how
//! long it runs, how much data it emits, and how much memory it touches.
//! These are exactly the quantities FaaSFlow's memory-reclamation needs:
//! `Mem(v)` (provisioned container memory), `S` (peak usage history), and
//! the output size that becomes the DAG edge weight.

use faasflow_sim::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// Default provisioned container memory: 256 MB (Table 3, "Resource limit
/// and Lifetime: 1-core with 256MB").
pub const DEFAULT_PROVISIONED_MEM: u64 = 256 << 20;

/// Behavioural model of one serverless function.
///
/// ```
/// use faasflow_wdl::FunctionProfile;
/// let p = FunctionProfile::with_millis(120, 4 << 20);
/// assert_eq!(p.exec_mean.as_millis_f64(), 120.0);
/// assert_eq!(p.output_bytes, 4 << 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FunctionProfile {
    /// Mean execution time of one instance (compute only, excluding data
    /// fetch/store, which the engines add on top).
    pub exec_mean: SimDuration,
    /// Coefficient of variation of the execution time. Samples are uniform
    /// in `[1-√3·cv, 1+√3·cv]·mean`, clamped at zero — light-tailed like the
    /// paper's compute kernels.
    pub exec_cv: f64,
    /// Total bytes emitted by the node per invocation (summed over foreach
    /// instances; each control-flow successor consumes the full output).
    pub output_bytes: u64,
    /// Peak memory the function actually uses — the paper's `S` in Eq. (1).
    pub peak_mem_bytes: u64,
    /// Provisioned container memory — the paper's `Mem(v)` in Eq. (1).
    pub provisioned_mem_bytes: u64,
    /// Priority class: higher values are shed later under overload
    /// (`ShedPolicy::DeadlineAware` drops the lowest class first). The
    /// default class 0 keeps the legacy earliest-deadline-only ordering.
    pub priority: u8,
}

// Serialization is hand-written so the `priority` field stays optional on
// the wire: class-0 profiles serialize exactly as they did before the field
// existed, and legacy workflow JSON (no `priority` key) deserializes to
// class 0.
impl Serialize for FunctionProfile {
    fn to_value(&self) -> serde::Value {
        let mut m: Vec<(String, serde::Value)> = vec![
            ("exec_mean".to_string(), self.exec_mean.to_value()),
            ("exec_cv".to_string(), self.exec_cv.to_value()),
            ("output_bytes".to_string(), self.output_bytes.to_value()),
            ("peak_mem_bytes".to_string(), self.peak_mem_bytes.to_value()),
            (
                "provisioned_mem_bytes".to_string(),
                self.provisioned_mem_bytes.to_value(),
            ),
        ];
        if self.priority != 0 {
            m.push(("priority".to_string(), self.priority.to_value()));
        }
        serde::Value::Map(m)
    }
}

impl Deserialize for FunctionProfile {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let m = serde::expect_map(value, "FunctionProfile")?;
        Ok(FunctionProfile {
            exec_mean: serde::field(m, "exec_mean", "FunctionProfile")?,
            exec_cv: serde::field(m, "exec_cv", "FunctionProfile")?,
            output_bytes: serde::field(m, "output_bytes", "FunctionProfile")?,
            peak_mem_bytes: serde::field(m, "peak_mem_bytes", "FunctionProfile")?,
            provisioned_mem_bytes: serde::field(m, "provisioned_mem_bytes", "FunctionProfile")?,
            priority: match m.iter().find(|(k, _)| k == "priority") {
                Some((_, v)) => u8::from_value(v)?,
                None => 0,
            },
        })
    }
}

impl FunctionProfile {
    /// A profile with the given mean execution time (milliseconds) and
    /// output size, 10 % execution-time variation, 64 MB peak memory and the
    /// default 256 MB provisioned container.
    pub fn with_millis(exec_ms: u64, output_bytes: u64) -> Self {
        FunctionProfile {
            exec_mean: SimDuration::from_millis(exec_ms),
            exec_cv: 0.1,
            output_bytes,
            peak_mem_bytes: 64 << 20,
            provisioned_mem_bytes: DEFAULT_PROVISIONED_MEM,
            priority: 0,
        }
    }

    /// Sets the priority class (higher survives overload shedding longer),
    /// returning the modified profile.
    pub fn priority(mut self, class: u8) -> Self {
        self.priority = class;
        self
    }

    /// Sets the peak memory usage (`S`), returning the modified profile.
    pub fn peak_mem(mut self, bytes: u64) -> Self {
        self.peak_mem_bytes = bytes;
        self
    }

    /// Sets the provisioned memory (`Mem(v)`), returning the modified profile.
    pub fn provisioned_mem(mut self, bytes: u64) -> Self {
        self.provisioned_mem_bytes = bytes;
        self
    }

    /// Sets the execution-time coefficient of variation.
    pub fn exec_variation(mut self, cv: f64) -> Self {
        self.exec_cv = cv;
        self
    }

    /// Samples one execution duration.
    ///
    /// # Panics
    ///
    /// Panics if the profile is invalid (see [`FunctionProfile::validate`]).
    pub fn sample_exec(&self, rng: &mut SimRng) -> SimDuration {
        if self.exec_cv == 0.0 {
            return self.exec_mean;
        }
        // Uniform distribution with the requested cv: half-width √3·cv·mean.
        let half_width = 3f64.sqrt() * self.exec_cv;
        let factor = rng.range_f64((1.0 - half_width).max(0.0), 1.0 + half_width);
        self.exec_mean.mul_f64(factor)
    }

    /// Checks internal consistency, returning a human-readable reason on
    /// failure.
    ///
    /// # Errors
    ///
    /// Returns `Err` when the execution variation is negative/non-finite or
    /// peak memory exceeds the provisioned container size.
    pub fn validate(&self) -> Result<(), String> {
        if !self.exec_cv.is_finite() || self.exec_cv < 0.0 {
            return Err(format!(
                "execution-time cv must be finite and non-negative, got {}",
                self.exec_cv
            ));
        }
        if self.peak_mem_bytes > self.provisioned_mem_bytes {
            return Err(format!(
                "peak memory {} exceeds provisioned memory {}",
                self.peak_mem_bytes, self.provisioned_mem_bytes
            ));
        }
        Ok(())
    }

    /// The over-provisioned slack `Mem(v) − S − μ` of Eq. (1), clamped at
    /// zero; `mu` is the paper's safety reserve for occasional requirements.
    pub fn overprovisioned_bytes(&self, mu: u64) -> u64 {
        self.provisioned_mem_bytes
            .saturating_sub(self.peak_mem_bytes)
            .saturating_sub(mu)
    }
}

impl Default for FunctionProfile {
    fn default() -> Self {
        FunctionProfile::with_millis(100, 1 << 20)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_respects_mean_and_bounds() {
        let p = FunctionProfile::with_millis(100, 0);
        let mut rng = SimRng::seed_from(1);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let d = p.sample_exec(&mut rng).as_millis_f64();
            assert!(d > 80.0 && d < 120.0, "10% cv keeps samples near mean");
            sum += d;
        }
        let mean = sum / n as f64;
        assert!((mean - 100.0).abs() < 1.0, "empirical mean {mean}");
    }

    #[test]
    fn zero_cv_is_deterministic() {
        let p = FunctionProfile::with_millis(50, 0).exec_variation(0.0);
        let mut rng = SimRng::seed_from(2);
        assert_eq!(p.sample_exec(&mut rng), SimDuration::from_millis(50));
    }

    #[test]
    fn overprovisioned_slack_matches_equation_one() {
        let p = FunctionProfile::with_millis(10, 0)
            .peak_mem(100 << 20)
            .provisioned_mem(256 << 20);
        let mu = 16 << 20;
        assert_eq!(p.overprovisioned_bytes(mu), (256 - 100 - 16) << 20);
        // Clamp at zero when the function already uses everything.
        let tight = p.peak_mem(250 << 20);
        assert_eq!(tight.overprovisioned_bytes(mu), 0);
    }

    #[test]
    fn priority_is_optional_on_the_wire() {
        // Class 0 serializes exactly as the field-less legacy format…
        let p = FunctionProfile::with_millis(10, 0);
        let json = serde_json::to_string(&p).expect("serializes");
        assert!(!json.contains("priority"), "class 0 stays off the wire");
        // …and legacy JSON (no `priority` key) deserializes to class 0.
        let back: FunctionProfile = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, p);
        assert_eq!(back.priority, 0);
        // Non-zero classes round-trip.
        let hi = p.priority(3);
        let json = serde_json::to_string(&hi).expect("serializes");
        assert!(json.contains("\"priority\":3"));
        let back: FunctionProfile = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, hi);
    }

    #[test]
    fn validation_rejects_bad_profiles() {
        let ok = FunctionProfile::default();
        assert!(ok.validate().is_ok());
        assert!(ok.exec_variation(-0.1).validate().is_err());
        assert!(ok
            .peak_mem(512 << 20)
            .validate()
            .unwrap_err()
            .contains("exceeds"));
    }
}
