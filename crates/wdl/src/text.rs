//! A compact, human-writable text format for workflow definitions — the
//! stand-in for hand-editing the paper's `workflow.yaml` (the JSON serde
//! form is precise but verbose).
//!
//! ```text
//! workflow video-pipeline
//!
//! seq {
//!     task probe 120ms out 512KB
//!     task split 600ms out 48MB mem 217MB
//!     foreach transcode x6 1500ms out 32MB
//!     par {
//!         task merge 800ms out 12MB
//!         task thumbs 300ms out 1MB
//!     }
//!     switch {
//!         case flagged { task blur 650ms }
//!         case clean   { task publish 80ms out 1MB }
//!     }
//!     task notify 30ms
//! }
//! ```
//!
//! Grammar (whitespace-separated tokens, `#` comments to end of line):
//!
//! ```text
//! file     := "workflow" NAME step
//! step     := task | foreach | "seq" "{" step+ "}"
//!           | "par" "{" step+ "}" | "switch" "{" case+ "}"
//! task     := "task" NAME DURATION attr*
//! foreach  := "foreach" NAME FANOUT DURATION attr*
//! case     := "case" NAME step
//! attr     := "out" SIZE | "mem" SIZE | "jitter" FLOAT
//! DURATION := INT ("ms" | "s")          FANOUT := "x" INT
//! SIZE     := INT ("B" | "KB" | "MB" | "GB")
//! ```
//!
//! `mem` sets the function's peak memory (`S` of Eq. (1)); `jitter` the
//! execution-time coefficient of variation.

use std::fmt;

use crate::profile::FunctionProfile;
use crate::step::{Step, SwitchCase, Workflow};

/// A parse error with 1-based line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextError {
    /// 1-based line of the offending token (0 for end-of-input errors).
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "at end of input: {}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for TextError {}

#[derive(Debug, Clone, PartialEq)]
struct Token {
    text: String,
    line: u32,
}

fn lex(input: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    for (idx, raw_line) in input.lines().enumerate() {
        let line = idx as u32 + 1;
        let code = raw_line.split('#').next().unwrap_or("");
        // Braces are tokens even without surrounding whitespace.
        let spaced = code.replace('{', " { ").replace('}', " } ");
        for word in spaced.split_whitespace() {
            tokens.push(Token {
                text: word.to_string(),
                line,
            });
        }
    }
    tokens
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, message: impl Into<String>) -> TextError {
        TextError {
            line: self.peek().map(|t| t.line).unwrap_or(0),
            message: message.into(),
        }
    }

    fn expect(&mut self, what: &str) -> Result<Token, TextError> {
        self.next().ok_or_else(|| TextError {
            line: 0,
            message: format!("expected {what}"),
        })
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), TextError> {
        let t = self.expect(&format!("`{lit}`"))?;
        if t.text == lit {
            Ok(())
        } else {
            Err(TextError {
                line: t.line,
                message: format!("expected `{lit}`, found `{}`", t.text),
            })
        }
    }

    fn parse_step(&mut self) -> Result<Step, TextError> {
        let t = self.expect("a step (task/foreach/seq/par/switch)")?;
        match t.text.as_str() {
            "task" => self.parse_task(),
            "foreach" => self.parse_foreach(),
            "seq" => Ok(Step::sequence(self.parse_block()?)),
            "par" => Ok(Step::parallel(self.parse_block()?)),
            "switch" => self.parse_switch(),
            other => Err(TextError {
                line: t.line,
                message: format!("expected task/foreach/seq/par/switch, found `{other}`"),
            }),
        }
    }

    fn parse_block(&mut self) -> Result<Vec<Step>, TextError> {
        self.expect_literal("{")?;
        let mut steps = Vec::new();
        loop {
            match self.peek() {
                Some(t) if t.text == "}" => {
                    self.next();
                    break;
                }
                Some(_) => steps.push(self.parse_step()?),
                None => {
                    return Err(TextError {
                        line: 0,
                        message: "unclosed `{` block".to_string(),
                    })
                }
            }
        }
        if steps.is_empty() {
            return Err(self.err_here("empty block"));
        }
        Ok(steps)
    }

    fn parse_switch(&mut self) -> Result<Step, TextError> {
        self.expect_literal("{")?;
        let mut cases = Vec::new();
        loop {
            match self.peek() {
                Some(t) if t.text == "}" => {
                    self.next();
                    break;
                }
                Some(t) if t.text == "case" => {
                    self.next();
                    let label = self.expect("a case label")?;
                    // Either a single step, or a braced block (an implicit
                    // sequence): `case flagged { task blur 650ms }`.
                    let step = if self.peek().map(|t| t.text.as_str()) == Some("{") {
                        let mut steps = self.parse_block()?;
                        if steps.len() == 1 {
                            steps.pop().expect("one element")
                        } else {
                            Step::sequence(steps)
                        }
                    } else {
                        self.parse_step()?
                    };
                    cases.push(SwitchCase::new(label.text, step));
                }
                Some(t) => {
                    return Err(TextError {
                        line: t.line,
                        message: format!("expected `case` or `}}`, found `{}`", t.text),
                    })
                }
                None => {
                    return Err(TextError {
                        line: 0,
                        message: "unclosed switch block".to_string(),
                    })
                }
            }
        }
        if cases.is_empty() {
            return Err(self.err_here("switch needs at least one case"));
        }
        Ok(Step::switch(cases))
    }

    fn parse_task(&mut self) -> Result<Step, TextError> {
        let name = self.expect("a task name")?;
        let dur = self.expect("a duration (e.g. 120ms)")?;
        let exec_ms = parse_duration_ms(&dur)?;
        let profile = self.parse_attrs(FunctionProfile::with_millis(exec_ms, 0))?;
        Ok(Step::task(name.text, profile))
    }

    fn parse_foreach(&mut self) -> Result<Step, TextError> {
        let name = self.expect("a foreach name")?;
        let fan = self.expect("a fan-out (e.g. x6)")?;
        let fanout = fan
            .text
            .strip_prefix('x')
            .and_then(|n| n.parse::<u32>().ok())
            .ok_or_else(|| TextError {
                line: fan.line,
                message: format!("expected a fan-out like `x6`, found `{}`", fan.text),
            })?;
        let dur = self.expect("a duration (e.g. 1500ms)")?;
        let exec_ms = parse_duration_ms(&dur)?;
        let profile = self.parse_attrs(FunctionProfile::with_millis(exec_ms, 0))?;
        Ok(Step::foreach(name.text, profile, fanout))
    }

    fn parse_attrs(&mut self, mut profile: FunctionProfile) -> Result<FunctionProfile, TextError> {
        loop {
            match self.peek().map(|t| t.text.as_str()) {
                Some("out") => {
                    self.next();
                    let size = self.expect("a size (e.g. 4MB)")?;
                    profile.output_bytes = parse_size_bytes(&size)?;
                }
                Some("mem") => {
                    self.next();
                    let size = self.expect("a size (e.g. 128MB)")?;
                    profile = profile.peak_mem(parse_size_bytes(&size)?);
                }
                Some("jitter") => {
                    self.next();
                    let v = self.expect("a coefficient (e.g. 0.1)")?;
                    let cv: f64 = v.text.parse().map_err(|_| TextError {
                        line: v.line,
                        message: format!("invalid jitter `{}`", v.text),
                    })?;
                    profile = profile.exec_variation(cv);
                }
                _ => break,
            }
        }
        Ok(profile)
    }
}

fn parse_duration_ms(t: &Token) -> Result<u64, TextError> {
    let text = &t.text;
    let (digits, scale) = if let Some(d) = text.strip_suffix("ms") {
        (d, 1)
    } else if let Some(d) = text.strip_suffix('s') {
        (d, 1000)
    } else {
        return Err(TextError {
            line: t.line,
            message: format!("expected a duration like `120ms` or `2s`, found `{text}`"),
        });
    };
    digits
        .parse::<u64>()
        .map(|n| n * scale)
        .map_err(|_| TextError {
            line: t.line,
            message: format!("invalid duration `{text}`"),
        })
}

fn parse_size_bytes(t: &Token) -> Result<u64, TextError> {
    let text = &t.text;
    let (digits, scale): (&str, u64) = if let Some(d) = text.strip_suffix("GB") {
        (d, 1 << 30)
    } else if let Some(d) = text.strip_suffix("MB") {
        (d, 1 << 20)
    } else if let Some(d) = text.strip_suffix("KB") {
        (d, 1 << 10)
    } else if let Some(d) = text.strip_suffix('B') {
        (d, 1)
    } else {
        return Err(TextError {
            line: t.line,
            message: format!("expected a size like `4MB`, found `{text}`"),
        });
    };
    digits
        .parse::<u64>()
        .map(|n| n * scale)
        .map_err(|_| TextError {
            line: t.line,
            message: format!("invalid size `{text}`"),
        })
}

/// Parses the compact text format into a [`Workflow`].
///
/// # Errors
///
/// Returns a [`TextError`] with the offending line on any syntax problem.
/// Structural validation (duplicate names, fan-out bounds, …) happens in
/// [`crate::DagParser::parse`] afterwards, as for every other input form.
///
/// ```
/// use faasflow_wdl::text::parse_text;
///
/// let wf = parse_text(
///     "workflow two-step\n\
///      seq {\n\
///          task fetch 40ms out 2MB\n\
///          task store 25ms\n\
///      }\n",
/// )?;
/// assert_eq!(wf.name, "two-step");
/// # Ok::<(), faasflow_wdl::text::TextError>(())
/// ```
pub fn parse_text(input: &str) -> Result<Workflow, TextError> {
    let mut parser = Parser {
        tokens: lex(input),
        pos: 0,
    };
    parser.expect_literal("workflow")?;
    let name = parser.expect("a workflow name")?;
    let root = parser.parse_step()?;
    if let Some(extra) = parser.peek() {
        return Err(TextError {
            line: extra.line,
            message: format!("unexpected trailing `{}`", extra.text),
        });
    }
    Ok(Workflow::steps(name.text, root))
}

/// Renders a steps-form workflow back to the text format (inverse of
/// [`parse_text`] up to formatting; raw-DAG workflows are not expressible).
///
/// Returns `None` for raw-DAG workflows.
pub fn to_text(workflow: &Workflow) -> Option<String> {
    let crate::step::WorkflowSpec::Steps(root) = &workflow.spec else {
        return None;
    };
    let mut out = format!("workflow {}\n\n", workflow.name);
    render_step(root, 0, &mut out);
    Some(out)
}

fn render_step(step: &Step, depth: usize, out: &mut String) {
    use std::fmt::Write as _;
    let pad = "    ".repeat(depth);
    match step {
        Step::Task { name, profile } => {
            let _ = writeln!(out, "{pad}task {name}{}", render_attrs(profile));
        }
        Step::Foreach {
            name,
            profile,
            fanout,
        } => {
            let _ = writeln!(
                out,
                "{pad}foreach {name} x{fanout}{}",
                render_attrs(profile)
            );
        }
        Step::Sequence { steps } => {
            let _ = writeln!(out, "{pad}seq {{");
            for s in steps {
                render_step(s, depth + 1, out);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Step::Parallel { branches } => {
            let _ = writeln!(out, "{pad}par {{");
            for s in branches {
                render_step(s, depth + 1, out);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Step::Switch { cases } => {
            let _ = writeln!(out, "{pad}switch {{");
            for c in cases {
                let _ = writeln!(out, "{pad}    case {}", c.condition);
                render_step(&c.step, depth + 2, out);
            }
            let _ = writeln!(out, "{pad}}}");
        }
    }
}

fn render_attrs(p: &FunctionProfile) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = write!(s, " {}ms", p.exec_mean.as_millis_f64().round() as u64);
    if p.output_bytes > 0 {
        let _ = write!(s, " out {}", render_size(p.output_bytes));
    }
    let _ = write!(s, " mem {}", render_size(p.peak_mem_bytes));
    s
}

fn render_size(bytes: u64) -> String {
    for (unit, scale) in [("GB", 1u64 << 30), ("MB", 1 << 20), ("KB", 1 << 10)] {
        if bytes >= scale && bytes.is_multiple_of(scale) {
            return format!("{}{unit}", bytes / scale);
        }
    }
    format!("{bytes}B")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DagParser;

    const VIDEO: &str = r#"
workflow video-pipeline   # the Alibaba use case
seq {
    task probe 120ms out 512KB
    task split 600ms out 48MB mem 217MB
    foreach transcode x6 1500ms out 32MB
    par {
        task merge 800ms out 12MB
        task thumbs 300ms out 1MB
    }
    switch {
        case flagged { task blur 650ms }
        case clean   { task publish 80ms out 1MB }
    }
    task notify 30ms jitter 0.0
}
"#;

    #[test]
    fn full_grammar_parses_and_validates() {
        let wf = parse_text(VIDEO).expect("parses");
        assert_eq!(wf.name, "video-pipeline");
        let dag = DagParser::default().parse(&wf).expect("validates");
        assert_eq!(dag.function_count(), 8);
        let transcode = dag
            .nodes()
            .iter()
            .find(|n| n.name == "transcode")
            .expect("foreach present");
        assert_eq!(transcode.parallelism, 6);
        let split = dag.nodes().iter().find(|n| n.name == "split").unwrap();
        let profile = split.kind.profile().unwrap();
        assert_eq!(profile.output_bytes, 48 << 20);
        assert_eq!(profile.peak_mem_bytes, 217 << 20);
    }

    #[test]
    fn round_trips_through_render() {
        let wf = parse_text(VIDEO).expect("parses");
        let text = to_text(&wf).expect("steps form renders");
        let back = parse_text(&text).expect("rendered text re-parses");
        // Structure and names survive; jitter defaults may differ, so
        // compare the parsed DAGs' shapes.
        let a = DagParser::default().parse(&wf).unwrap();
        let b = DagParser::default().parse(&back).unwrap();
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edges().len(), b.edges().len());
        let names_a: Vec<_> = a.nodes().iter().map(|n| &n.name).collect();
        let names_b: Vec<_> = b.nodes().iter().map(|n| &n.name).collect();
        assert_eq!(names_a, names_b);
    }

    #[test]
    fn durations_and_sizes() {
        let wf = parse_text("workflow u\ntask a 2s out 3GB mem 1KB").expect("parses");
        let dag = DagParser::default().parse(&wf);
        // peak 1KB < provisioned: fine.
        let dag = dag.expect("validates");
        let p = dag.nodes()[0].kind.profile().unwrap();
        assert_eq!(p.exec_mean.as_millis_f64(), 2000.0);
        assert_eq!(p.output_bytes, 3 << 30);
        assert_eq!(p.peak_mem_bytes, 1 << 10);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_text("workflow x\nseq {\n    task a banana\n}").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("duration"), "{err}");

        let err = parse_text("workflow x\nseq {\n    task a 5ms\n").unwrap_err();
        assert_eq!(err.line, 0, "unclosed block reported at EOF");

        let err = parse_text("workflow x\ntask a 5ms\ntrailing").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn comments_and_whitespace_are_ignored() {
        let wf = parse_text("workflow c # name\n# full-line comment\n   task a 1ms#glued\n")
            .expect("parses");
        assert_eq!(wf.name, "c");
    }

    #[test]
    fn rejects_malformed_constructs() {
        assert!(parse_text("").is_err());
        assert!(parse_text("workflow x").is_err());
        assert!(parse_text("workflow x\nseq { }").is_err());
        assert!(parse_text("workflow x\nswitch { }").is_err());
        assert!(parse_text("workflow x\nforeach f y6 1ms").is_err());
        assert!(parse_text("workflow x\ntask a 1ms out 4XB").is_err());
        assert!(parse_text("workflow x\nswitch { task a 1ms }").is_err());
    }

    #[test]
    fn render_size_picks_exact_units() {
        assert_eq!(render_size(48 << 20), "48MB");
        assert_eq!(render_size(1 << 30), "1GB");
        assert_eq!(render_size(1536), "1536B"); // not an exact KB multiple
        assert_eq!(render_size(512 << 10), "512KB");
    }
}
