//! Workflow definitions: hierarchical logic steps and raw DAG specs.
//!
//! §4.1.1 of the paper: "FaaSFlow currently provides the following basic
//! logic steps to describe and define an application logic: Task, Sequence,
//! Parallel, Switch, Foreach." The Pegasus scientific workflows are not
//! hierarchical, so a raw [`DagSpec`] form is provided as well — the parser
//! accepts both.

use serde::{Deserialize, Serialize};

use crate::profile::FunctionProfile;

/// A complete workflow definition: a name plus its structure.
///
/// This is the in-memory form of the paper's `workflow.yaml`; it round-trips
/// through serde (the examples use JSON).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workflow {
    /// Unique workflow name.
    pub name: String,
    /// The structure: hierarchical steps or a raw DAG.
    pub spec: WorkflowSpec,
}

impl Workflow {
    /// A workflow defined by hierarchical logic steps.
    pub fn steps(name: impl Into<String>, root: Step) -> Self {
        Workflow {
            name: name.into(),
            spec: WorkflowSpec::Steps(root),
        }
    }

    /// A workflow defined as a raw DAG (Pegasus-style).
    pub fn dag(name: impl Into<String>, spec: DagSpec) -> Self {
        Workflow {
            name: name.into(),
            spec: WorkflowSpec::Dag(spec),
        }
    }
}

/// The two accepted structure forms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum WorkflowSpec {
    /// Hierarchical logic steps (§4.1.1).
    Steps(Step),
    /// A raw DAG of tasks and edges.
    Dag(DagSpec),
}

/// One logic step of the WDL.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Step {
    /// A single function invocation; becomes one DAG node.
    Task {
        /// Unique task name within the workflow.
        name: String,
        /// Behavioural profile of the function.
        profile: FunctionProfile,
    },
    /// Serial child steps; each starts when its predecessor finishes.
    Sequence {
        /// The children, executed in order.
        steps: Vec<Step>,
    },
    /// Child steps executed concurrently (attribute `branches` in the WDL).
    Parallel {
        /// The concurrent branches.
        branches: Vec<Step>,
    },
    /// Conditional execution: exactly one case runs per invocation; the
    /// parser lowers it like a parallel step (§4.1.1) but the virtual end
    /// node joins with *any* semantics.
    Switch {
        /// The alternative cases.
        cases: Vec<SwitchCase>,
    },
    /// Per-element parallel execution of one task. The parser "equally
    /// considers all parallel instances in the foreach step as one node":
    /// it becomes a single DAG node with `parallelism = fanout`.
    Foreach {
        /// Task name.
        name: String,
        /// Behavioural profile of each instance; `profile.output_bytes` is
        /// the *total* output across all instances.
        profile: FunctionProfile,
        /// Number of parallel instances (the executor map `Map(v)`).
        fanout: u32,
    },
}

impl Step {
    /// A task step.
    pub fn task(name: impl Into<String>, profile: FunctionProfile) -> Step {
        Step::Task {
            name: name.into(),
            profile,
        }
    }

    /// A sequence step.
    pub fn sequence(steps: Vec<Step>) -> Step {
        Step::Sequence { steps }
    }

    /// A parallel step.
    pub fn parallel(branches: Vec<Step>) -> Step {
        Step::Parallel { branches }
    }

    /// A switch step.
    pub fn switch(cases: Vec<SwitchCase>) -> Step {
        Step::Switch { cases }
    }

    /// A foreach step.
    pub fn foreach(name: impl Into<String>, profile: FunctionProfile, fanout: u32) -> Step {
        Step::Foreach {
            name: name.into(),
            profile,
            fanout,
        }
    }

    /// Number of task/foreach steps in this subtree (function count).
    pub fn function_count(&self) -> usize {
        match self {
            Step::Task { .. } | Step::Foreach { .. } => 1,
            Step::Sequence { steps } => steps.iter().map(Step::function_count).sum(),
            Step::Parallel { branches } => branches.iter().map(Step::function_count).sum(),
            Step::Switch { cases } => cases.iter().map(|c| c.step.function_count()).sum(),
        }
    }
}

/// One arm of a switch step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchCase {
    /// Human-readable condition label (the conditional expression in the
    /// WDL; the simulation selects arms deterministically by invocation
    /// hash, so the label is documentation).
    pub condition: String,
    /// The step executed when this case is selected.
    pub step: Step,
}

impl SwitchCase {
    /// Creates a case.
    pub fn new(condition: impl Into<String>, step: Step) -> Self {
        SwitchCase {
            condition: condition.into(),
            step,
        }
    }
}

/// A raw DAG definition: named tasks plus producer→consumer edges.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DagSpec {
    /// The tasks (DAG nodes).
    pub tasks: Vec<DagTask>,
    /// Edges as `(producer name, consumer name)` pairs.
    pub edges: Vec<(String, String)>,
}

impl DagSpec {
    /// Creates an empty spec.
    pub fn new() -> Self {
        DagSpec::default()
    }

    /// Adds a task; returns `&mut self` for chaining.
    pub fn task(&mut self, name: impl Into<String>, profile: FunctionProfile) -> &mut Self {
        self.tasks.push(DagTask {
            name: name.into(),
            profile,
            parallelism: 1,
        });
        self
    }

    /// Adds a task with an executor fan-out (foreach-like node).
    pub fn task_with_parallelism(
        &mut self,
        name: impl Into<String>,
        profile: FunctionProfile,
        parallelism: u32,
    ) -> &mut Self {
        self.tasks.push(DagTask {
            name: name.into(),
            profile,
            parallelism,
        });
        self
    }

    /// Adds an edge; returns `&mut self` for chaining.
    pub fn edge(&mut self, from: impl Into<String>, to: impl Into<String>) -> &mut Self {
        self.edges.push((from.into(), to.into()));
        self
    }
}

/// One task of a raw DAG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagTask {
    /// Unique task name.
    pub name: String,
    /// Behavioural profile.
    pub profile: FunctionProfile,
    /// Parallel executor instances (1 for plain tasks).
    pub parallelism: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> FunctionProfile {
        FunctionProfile::with_millis(10, 1024)
    }

    #[test]
    fn function_count_walks_the_tree() {
        let step = Step::sequence(vec![
            Step::task("a", p()),
            Step::parallel(vec![
                Step::task("b", p()),
                Step::sequence(vec![Step::task("c", p()), Step::task("d", p())]),
            ]),
            Step::switch(vec![
                SwitchCase::new("x > 0", Step::task("e", p())),
                SwitchCase::new("else", Step::task("f", p())),
            ]),
            Step::foreach("g", p(), 8),
        ]);
        assert_eq!(step.function_count(), 7);
    }

    #[test]
    fn workflow_serde_round_trip() {
        let wf = Workflow::steps(
            "rt",
            Step::sequence(vec![Step::task("a", p()), Step::foreach("b", p(), 3)]),
        );
        let json = serde_json::to_string(&wf).expect("serializes");
        let back: Workflow = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(wf, back);
    }

    #[test]
    fn dag_spec_builder_chains() {
        let mut spec = DagSpec::new();
        spec.task("a", p()).task("b", p()).edge("a", "b");
        assert_eq!(spec.tasks.len(), 2);
        assert_eq!(spec.edges.len(), 1);
        let wf = Workflow::dag("raw", spec);
        let json = serde_json::to_string(&wf).expect("serializes");
        let back: Workflow = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(wf, back);
    }
}
