//! The parsed workflow DAG.
//!
//! A [`WorkflowDag`] carries two graphs over one node set:
//!
//! * **Control edges** — the user-defined execution order, including the
//!   virtual start/end nodes the parser inserts around parallel, switch and
//!   foreach steps. Triggering (`PredecessorsDone == PredecessorsCount`,
//!   §3.1) and graph partitioning (Algorithm 1) walk these.
//! * **Data edges** — producer function → consumer function pairs obtained
//!   by looking *through* the virtual nodes. The engines move bytes along
//!   these; virtual nodes never hold data.
//!
//! Edge weights start as an analytic estimate (bytes over a reference
//! bandwidth) and are replaced by observed 99-percentile transfer latencies
//! at runtime ("DAG Parser ... calculates the 99%-ile latency of data
//! transmission between adjacent nodes as edge weight", §4.1.1).

use faasflow_sim::{FunctionId, SimDuration};
use serde::{Deserialize, Serialize};

use crate::profile::FunctionProfile;

/// Identifier of a control edge within one [`WorkflowDag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub(crate) u32);

impl EdgeId {
    /// The raw index, usable for dense `Vec` indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds an id from an index previously obtained via
    /// [`EdgeId::index`] (e.g. when iterating dense per-edge tables).
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    pub fn from_index(index: usize) -> Self {
        EdgeId(u32::try_from(index).expect("edge index exceeds u32"))
    }
}

impl std::fmt::Display for EdgeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "edge{}", self.0)
    }
}

/// What a DAG node is.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeKind {
    /// A real function with a behavioural profile.
    Function(FunctionProfile),
    /// Virtual start bracket of a parallel/switch/foreach step. For a
    /// switch, `switch_arms` is the number of alternative arms; the engine
    /// selects one arm per invocation.
    VirtualStart {
        /// `Some(n)` when this bracket opens a switch with `n` arms.
        switch_arms: Option<u32>,
    },
    /// Virtual end bracket of a parallel/switch/foreach step.
    VirtualEnd,
}

impl NodeKind {
    /// True for real function nodes.
    pub fn is_function(&self) -> bool {
        matches!(self, NodeKind::Function(_))
    }

    /// The profile of a function node, if any.
    pub fn profile(&self) -> Option<&FunctionProfile> {
        match self {
            NodeKind::Function(p) => Some(p),
            _ => None,
        }
    }
}

/// How a node's predecessors gate its trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinKind {
    /// Every control predecessor must complete (the common case).
    All,
    /// One completing predecessor suffices (switch virtual ends: exactly one
    /// arm runs per invocation).
    Any,
}

/// One node of the workflow DAG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagNode {
    /// Dense node id (virtual nodes included).
    pub id: FunctionId,
    /// Name: the task name for functions, a generated bracket name for
    /// virtual nodes.
    pub name: String,
    /// Function or virtual bracket.
    pub kind: NodeKind,
    /// Trigger semantics.
    pub join: JoinKind,
    /// Parallel executor instances — the paper's `Map(v)`; 1 except for
    /// foreach nodes.
    pub parallelism: u32,
}

impl DagNode {
    /// Mean execution time used for critical-path estimates (zero for
    /// virtual nodes).
    pub fn exec_mean(&self) -> SimDuration {
        match &self.kind {
            NodeKind::Function(p) => p.exec_mean,
            _ => SimDuration::ZERO,
        }
    }
}

/// One control edge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagEdge {
    /// Dense edge id.
    pub id: EdgeId,
    /// Producer side.
    pub from: FunctionId,
    /// Consumer side.
    pub to: FunctionId,
    /// Bytes crossing this edge per invocation (0 on purely structural
    /// virtual edges).
    pub bytes: u64,
    /// Current weight: estimated or observed 99-percentile transfer latency.
    pub weight: SimDuration,
    /// `Some(arm)` when this edge leaves a switch virtual start: it is only
    /// taken when the engine selects that arm.
    pub switch_arm: Option<u32>,
}

/// A direct producer→consumer data dependency between two *function* nodes
/// (virtual nodes looked through).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataEdge {
    /// Producing function node.
    pub producer: FunctionId,
    /// Consuming function node.
    pub consumer: FunctionId,
    /// Bytes the consumer reads from this producer per invocation.
    pub bytes: u64,
}

/// The parsed workflow graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowDag {
    name: String,
    nodes: Vec<DagNode>,
    edges: Vec<DagEdge>,
    data_edges: Vec<DataEdge>,
    /// successors[v] = (edge, target) pairs, in insertion order.
    successors: Vec<Vec<(EdgeId, FunctionId)>>,
    /// predecessors[v] = (edge, source) pairs, in insertion order.
    predecessors: Vec<Vec<(EdgeId, FunctionId)>>,
    topo: Vec<FunctionId>,
}

impl WorkflowDag {
    /// Assembles a DAG from parts. Used by the parser; panics on structural
    /// inconsistencies because the parser validates first.
    ///
    /// # Panics
    ///
    /// Panics if edges reference out-of-range nodes or the graph is cyclic.
    pub(crate) fn assemble(
        name: String,
        nodes: Vec<DagNode>,
        edges: Vec<DagEdge>,
        data_edges: Vec<DataEdge>,
    ) -> Self {
        let n = nodes.len();
        let mut successors = vec![Vec::new(); n];
        let mut predecessors = vec![Vec::new(); n];
        for e in &edges {
            assert!(e.from.index() < n && e.to.index() < n, "edge out of range");
            successors[e.from.index()].push((e.id, e.to));
            predecessors[e.to.index()].push((e.id, e.from));
        }
        let mut dag = WorkflowDag {
            name,
            nodes,
            edges,
            data_edges,
            successors,
            predecessors,
            topo: Vec::new(),
        };
        dag.topo = dag
            .compute_topo()
            .expect("parser guarantees acyclicity before assembly");
        dag
    }

    /// The workflow's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total node count, virtual nodes included.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of real function nodes.
    pub fn function_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind.is_function()).count()
    }

    /// All nodes, indexed by [`FunctionId::index`].
    pub fn nodes(&self) -> &[DagNode] {
        &self.nodes
    }

    /// One node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: FunctionId) -> &DagNode {
        &self.nodes[id.index()]
    }

    /// All control edges, indexed by [`EdgeId::index`].
    pub fn edges(&self) -> &[DagEdge] {
        &self.edges
    }

    /// One control edge.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn edge(&self, id: EdgeId) -> &DagEdge {
        &self.edges[id.index()]
    }

    /// All data edges (producer/consumer function pairs).
    pub fn data_edges(&self) -> &[DataEdge] {
        &self.data_edges
    }

    /// Data edges consumed by `consumer`.
    pub fn data_inputs(&self, consumer: FunctionId) -> impl Iterator<Item = &DataEdge> {
        self.data_edges
            .iter()
            .filter(move |d| d.consumer == consumer)
    }

    /// Data edges produced by `producer`.
    pub fn data_outputs(&self, producer: FunctionId) -> impl Iterator<Item = &DataEdge> {
        self.data_edges
            .iter()
            .filter(move |d| d.producer == producer)
    }

    /// Control successors of `id` as `(edge, node)` pairs.
    pub fn successors(&self, id: FunctionId) -> &[(EdgeId, FunctionId)] {
        &self.successors[id.index()]
    }

    /// Control predecessors of `id` as `(edge, node)` pairs.
    pub fn predecessors(&self, id: FunctionId) -> &[(EdgeId, FunctionId)] {
        &self.predecessors[id.index()]
    }

    /// The paper's `PredecessorsCount` for a node: the number of completed
    /// predecessors required to trigger it (1 for [`JoinKind::Any`] nodes
    /// with at least one predecessor).
    pub fn required_predecessors(&self, id: FunctionId) -> u32 {
        let n = self.predecessors[id.index()].len() as u32;
        match self.node(id).join {
            JoinKind::All => n,
            JoinKind::Any => n.min(1),
        }
    }

    /// Nodes without control predecessors (triggered directly by the
    /// invocation request).
    pub fn entry_nodes(&self) -> Vec<FunctionId> {
        (0..self.nodes.len())
            .filter(|&i| self.predecessors[i].is_empty())
            .map(FunctionId::from)
            .collect()
    }

    /// Nodes without control successors (their completion ends the
    /// invocation).
    pub fn exit_nodes(&self) -> Vec<FunctionId> {
        (0..self.nodes.len())
            .filter(|&i| self.successors[i].is_empty())
            .map(FunctionId::from)
            .collect()
    }

    /// A topological order of all nodes (stable across runs).
    pub fn topo_order(&self) -> &[FunctionId] {
        &self.topo
    }

    /// Overwrites a control edge's weight with an observed latency —
    /// the runtime feedback loop of §4.1.2.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn set_edge_weight(&mut self, id: EdgeId, weight: SimDuration) {
        self.edges[id.index()].weight = weight;
    }

    /// The critical path under the stored edge weights: the longest chain
    /// of `node exec_mean + edge weight` from an entry to an exit node.
    ///
    /// Returns the path's nodes (in order) and the edges between them.
    pub fn critical_path(&self) -> (Vec<FunctionId>, Vec<EdgeId>) {
        self.critical_path_with(|e| e.weight)
    }

    /// The critical path under caller-supplied *effective* edge weights
    /// (Algorithm 1 re-evaluates the path as merges localise edges).
    pub fn critical_path_with(
        &self,
        mut edge_weight: impl FnMut(&DagEdge) -> SimDuration,
    ) -> (Vec<FunctionId>, Vec<EdgeId>) {
        let n = self.nodes.len();
        // dist[v] = cost of the heaviest path ending at v (inclusive).
        let mut dist = vec![SimDuration::ZERO; n];
        let mut via: Vec<Option<(FunctionId, EdgeId)>> = vec![None; n];
        for &v in &self.topo {
            let mut best = SimDuration::ZERO;
            let mut best_via = None;
            for &(eid, u) in &self.predecessors[v.index()] {
                let w = dist[u.index()] + edge_weight(&self.edges[eid.index()]);
                // Strictly-greater keeps the earliest (deterministic) arg.
                if best_via.is_none() || w > best {
                    best = w;
                    best_via = Some((u, eid));
                }
            }
            dist[v.index()] = best + self.nodes[v.index()].exec_mean();
            via[v.index()] = best_via;
        }
        // The sink of the critical path is the node with max dist.
        let mut end = FunctionId::new(0);
        for i in 0..n {
            if dist[i] > dist[end.index()] {
                end = FunctionId::from(i);
            }
        }
        let mut nodes = vec![end];
        let mut edges = Vec::new();
        let mut cur = end;
        while let Some((prev, eid)) = via[cur.index()] {
            nodes.push(prev);
            edges.push(eid);
            cur = prev;
        }
        nodes.reverse();
        edges.reverse();
        (nodes, edges)
    }

    /// Total execution time of the critical path's *function* nodes — what
    /// §2.3 deducts from end-to-end latency to compute scheduling overhead.
    pub fn critical_path_exec(&self) -> SimDuration {
        let (nodes, _) = self.critical_path();
        nodes
            .iter()
            .map(|&v| self.node(v).exec_mean())
            .fold(SimDuration::ZERO, |a, b| a + b)
    }

    /// Sum of bytes over all *data* edges — the per-invocation data
    /// movement of Figure 5's FaaS bars.
    pub fn total_data_bytes(&self) -> u64 {
        self.data_edges.iter().map(|d| d.bytes).sum()
    }

    /// Kahn's algorithm; `None` on a cycle.
    fn compute_topo(&self) -> Option<Vec<FunctionId>> {
        let n = self.nodes.len();
        let mut indeg: Vec<usize> = (0..n).map(|i| self.predecessors[i].len()).collect();
        // A queue ordered by node id keeps the order deterministic.
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
            .filter(|&i| indeg[i] == 0)
            .map(std::cmp::Reverse)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(std::cmp::Reverse(v)) = ready.pop() {
            order.push(FunctionId::from(v));
            for &(_, s) in &self.successors[v] {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    ready.push(std::cmp::Reverse(s.index()));
                }
            }
        }
        (order.len() == n).then_some(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-builds a diamond: a -> {b, c} -> d with given weights.
    fn diamond() -> WorkflowDag {
        let mk = |i: u32, name: &str, ms: u64| DagNode {
            id: FunctionId::new(i),
            name: name.to_string(),
            kind: NodeKind::Function(FunctionProfile::with_millis(ms, 1000)),
            join: JoinKind::All,
            parallelism: 1,
        };
        let nodes = vec![
            mk(0, "a", 10),
            mk(1, "b", 50),
            mk(2, "c", 20),
            mk(3, "d", 10),
        ];
        let edge = |i: u32, f: u32, t: u32, w_ms: u64| DagEdge {
            id: EdgeId(i),
            from: FunctionId::new(f),
            to: FunctionId::new(t),
            bytes: 1000,
            weight: SimDuration::from_millis(w_ms),
            switch_arm: None,
        };
        let edges = vec![
            edge(0, 0, 1, 1),
            edge(1, 0, 2, 1),
            edge(2, 1, 3, 1),
            edge(3, 2, 3, 1),
        ];
        let data_edges = edges
            .iter()
            .map(|e| DataEdge {
                producer: e.from,
                consumer: e.to,
                bytes: e.bytes,
            })
            .collect();
        WorkflowDag::assemble("diamond".into(), nodes, edges, data_edges)
    }

    #[test]
    fn topo_order_respects_edges() {
        let dag = diamond();
        let topo = dag.topo_order();
        let pos: Vec<usize> = (0..4)
            .map(|i| {
                topo.iter()
                    .position(|&v| v.index() == i)
                    .expect("node present")
            })
            .collect();
        assert!(pos[0] < pos[1] && pos[0] < pos[2]);
        assert!(pos[1] < pos[3] && pos[2] < pos[3]);
    }

    #[test]
    fn critical_path_takes_the_heavy_branch() {
        let dag = diamond();
        let (nodes, edges) = dag.critical_path();
        let names: Vec<&str> = nodes.iter().map(|&v| dag.node(v).name.as_str()).collect();
        assert_eq!(names, ["a", "b", "d"], "b (50ms) dominates c (20ms)");
        assert_eq!(edges.len(), 2);
        assert_eq!(
            dag.critical_path_exec(),
            SimDuration::from_millis(10 + 50 + 10)
        );
    }

    #[test]
    fn critical_path_reacts_to_weight_updates() {
        let mut dag = diamond();
        // Make the a->c edge dominate everything.
        let ac = dag
            .edges()
            .iter()
            .find(|e| e.from == FunctionId::new(0) && e.to == FunctionId::new(2))
            .expect("edge exists")
            .id;
        dag.set_edge_weight(ac, SimDuration::from_secs(10));
        let (nodes, _) = dag.critical_path();
        let names: Vec<&str> = nodes.iter().map(|&v| dag.node(v).name.as_str()).collect();
        assert_eq!(names, ["a", "c", "d"]);
    }

    #[test]
    fn effective_weights_can_localise_an_edge() {
        let dag = diamond();
        // Zero every edge weight: path now decided by exec times only.
        let (nodes, _) = dag.critical_path_with(|_| SimDuration::ZERO);
        let names: Vec<&str> = nodes.iter().map(|&v| dag.node(v).name.as_str()).collect();
        assert_eq!(names, ["a", "b", "d"]);
    }

    #[test]
    fn entry_exit_and_required_predecessors() {
        let dag = diamond();
        assert_eq!(dag.entry_nodes(), vec![FunctionId::new(0)]);
        assert_eq!(dag.exit_nodes(), vec![FunctionId::new(3)]);
        assert_eq!(dag.required_predecessors(FunctionId::new(3)), 2);
        assert_eq!(dag.required_predecessors(FunctionId::new(0)), 0);
    }

    #[test]
    fn total_data_bytes_sums_data_edges() {
        let dag = diamond();
        assert_eq!(dag.total_data_bytes(), 4000);
    }

    #[test]
    #[should_panic(expected = "acyclicity")]
    fn cycle_detection_panics_on_assembly() {
        let mk = |i: u32| DagNode {
            id: FunctionId::new(i),
            name: format!("n{i}"),
            kind: NodeKind::Function(FunctionProfile::default()),
            join: JoinKind::All,
            parallelism: 1,
        };
        let e = |i: u32, f: u32, t: u32| DagEdge {
            id: EdgeId(i),
            from: FunctionId::new(f),
            to: FunctionId::new(t),
            bytes: 0,
            weight: SimDuration::ZERO,
            switch_arm: None,
        };
        let _ = WorkflowDag::assemble(
            "cyclic".into(),
            vec![mk(0), mk(1)],
            vec![e(0, 0, 1), e(1, 1, 0)],
            vec![],
        );
    }
}
