//! Error type for workflow definition validation and parsing.

use std::fmt;

/// An error raised while validating or parsing a workflow definition.
///
/// The [`crate::DagParser`] is "implemented in the Graph Scheduler to
/// prevent violated WDL definition" (§4.1.1); every variant corresponds to
/// one class of violation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WdlError {
    /// Two task steps share the same name.
    DuplicateTaskName {
        /// The offending name.
        name: String,
    },
    /// A sequence, parallel, or switch step has no children.
    EmptyStep {
        /// The kind of step ("sequence", "parallel", "switch").
        kind: &'static str,
    },
    /// A foreach step declared a zero fan-out.
    ZeroFanout {
        /// The foreach task's name.
        name: String,
    },
    /// A foreach fan-out exceeds the configured bound.
    FanoutTooLarge {
        /// The foreach task's name.
        name: String,
        /// Declared fan-out.
        fanout: u32,
        /// Configured maximum.
        max: u32,
    },
    /// A raw-DAG edge references an unknown task name.
    UnknownTask {
        /// The unresolved name.
        name: String,
    },
    /// A raw-DAG edge connects a task to itself.
    SelfLoop {
        /// The task's name.
        name: String,
    },
    /// A raw DAG contains a cycle.
    Cycle {
        /// A task on the cycle.
        witness: String,
    },
    /// A raw-DAG edge is declared twice.
    DuplicateEdge {
        /// Producer name.
        from: String,
        /// Consumer name.
        to: String,
    },
    /// The workflow defines no function at all.
    NoFunctions,
    /// A function profile carries an invalid value.
    InvalidProfile {
        /// The task's name.
        name: String,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for WdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WdlError::DuplicateTaskName { name } => {
                write!(f, "duplicate task name `{name}`")
            }
            WdlError::EmptyStep { kind } => write!(f, "empty {kind} step"),
            WdlError::ZeroFanout { name } => {
                write!(f, "foreach step `{name}` has zero fan-out")
            }
            WdlError::FanoutTooLarge { name, fanout, max } => write!(
                f,
                "foreach step `{name}` fan-out {fanout} exceeds the maximum {max}"
            ),
            WdlError::UnknownTask { name } => {
                write!(f, "edge references unknown task `{name}`")
            }
            WdlError::SelfLoop { name } => {
                write!(f, "task `{name}` has an edge to itself")
            }
            WdlError::Cycle { witness } => {
                write!(f, "workflow graph contains a cycle through `{witness}`")
            }
            WdlError::DuplicateEdge { from, to } => {
                write!(f, "edge `{from}` -> `{to}` declared twice")
            }
            WdlError::NoFunctions => write!(f, "workflow defines no function"),
            WdlError::InvalidProfile { name, reason } => {
                write!(f, "invalid profile for task `{name}`: {reason}")
            }
        }
    }
}

impl std::error::Error for WdlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = WdlError::DuplicateTaskName {
            name: "f".to_string(),
        };
        let msg = e.to_string();
        assert!(msg.starts_with("duplicate"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: std::error::Error + Send + Sync + 'static>(_e: E) {}
        takes_error(WdlError::NoFunctions);
    }
}
