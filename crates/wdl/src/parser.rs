//! The DAG parser (§4.1.1).
//!
//! "The DAG Parser is implemented in the Graph Scheduler to prevent violated
//! WDL definition and parse the hierarchy WDL into a DAG object."
//!
//! Lowering rules:
//!
//! * **Task** → one function node.
//! * **Sequence** → children lowered in order, exits of child *i* wired to
//!   entries of child *i+1*.
//! * **Parallel** → a virtual start and a virtual end node bracket the
//!   branches (atomic-partitioning brackets).
//! * **Switch** → lowered "following the same logic of a parallel step",
//!   except edges out of the virtual start are tagged with their arm index
//!   and the virtual end joins with [`JoinKind::Any`].
//! * **Foreach** → a *single* node with `parallelism = fanout`, bracketed by
//!   virtual nodes ("DAG Parser equally considers all parallel instances in
//!   the foreach step as one node").
//!
//! Edge byte counts follow the data plane: an edge out of a function carries
//! that function's output; an edge out of a virtual node carries the volume
//! the bracket relays. Initial edge weights are the analytic transfer
//! estimate `base + bytes / reference_bandwidth`; the runtime replaces them
//! with observed 99-percentile latencies (§4.1.2).

use std::collections::{HashMap, HashSet};

use faasflow_sim::{FunctionId, SimDuration};
use serde::{Deserialize, Serialize};

use crate::dag::{DagEdge, DagNode, DataEdge, EdgeId, JoinKind, NodeKind, WorkflowDag};
use crate::error::WdlError;
use crate::step::{DagSpec, Step, Workflow, WorkflowSpec};

/// Tunables of the parser.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParserConfig {
    /// Bandwidth assumed for the *initial* edge-weight estimate, bytes/s.
    /// 50 MB/s — the default storage-node bandwidth of §5.4.
    pub reference_bandwidth: f64,
    /// Fixed per-transfer latency added to the estimate.
    pub base_transfer_latency: SimDuration,
    /// Upper bound on foreach fan-outs (guards against absurd definitions).
    pub max_fanout: u32,
}

impl Default for ParserConfig {
    fn default() -> Self {
        ParserConfig {
            reference_bandwidth: 50e6,
            base_transfer_latency: SimDuration::from_millis(2),
            max_fanout: 1024,
        }
    }
}

/// Parses [`Workflow`] definitions into [`WorkflowDag`]s.
///
/// ```
/// use faasflow_wdl::{DagParser, Workflow, Step, FunctionProfile};
///
/// let wf = Workflow::steps(
///     "two-step",
///     Step::sequence(vec![
///         Step::task("a", FunctionProfile::with_millis(5, 100)),
///         Step::task("b", FunctionProfile::with_millis(5, 0)),
///     ]),
/// );
/// let dag = DagParser::default().parse(&wf)?;
/// assert_eq!(dag.node_count(), 2);
/// # Ok::<(), faasflow_wdl::WdlError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct DagParser {
    config: ParserConfig,
}

impl DagParser {
    /// A parser with explicit configuration.
    pub fn new(config: ParserConfig) -> Self {
        DagParser { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ParserConfig {
        &self.config
    }

    /// Parses and validates a workflow definition.
    ///
    /// # Errors
    ///
    /// Returns a [`WdlError`] describing the first violated WDL rule:
    /// duplicate or unknown task names, empty steps, zero/oversized
    /// fan-outs, self-loops, duplicate edges, cycles, invalid profiles, or
    /// a workflow with no function at all.
    pub fn parse(&self, workflow: &Workflow) -> Result<WorkflowDag, WdlError> {
        match &workflow.spec {
            WorkflowSpec::Steps(root) => self.parse_steps(&workflow.name, root),
            WorkflowSpec::Dag(spec) => self.parse_dag(&workflow.name, spec),
        }
    }

    // ------------------------------------------------------------------
    // Hierarchical steps
    // ------------------------------------------------------------------

    fn parse_steps(&self, name: &str, root: &Step) -> Result<WorkflowDag, WdlError> {
        let mut b = Builder::new(self.config);
        b.validate_names(root)?;
        let (_, _) = b.lower(root)?;
        b.finish(name)
    }

    // ------------------------------------------------------------------
    // Raw DAG
    // ------------------------------------------------------------------

    fn parse_dag(&self, name: &str, spec: &DagSpec) -> Result<WorkflowDag, WdlError> {
        if spec.tasks.is_empty() {
            return Err(WdlError::NoFunctions);
        }
        let mut index: HashMap<&str, FunctionId> = HashMap::new();
        let mut nodes = Vec::with_capacity(spec.tasks.len());
        for (i, task) in spec.tasks.iter().enumerate() {
            if index.insert(&task.name, FunctionId::from(i)).is_some() {
                return Err(WdlError::DuplicateTaskName {
                    name: task.name.clone(),
                });
            }
            task.profile
                .validate()
                .map_err(|reason| WdlError::InvalidProfile {
                    name: task.name.clone(),
                    reason,
                })?;
            if task.parallelism == 0 {
                return Err(WdlError::ZeroFanout {
                    name: task.name.clone(),
                });
            }
            if task.parallelism > self.config.max_fanout {
                return Err(WdlError::FanoutTooLarge {
                    name: task.name.clone(),
                    fanout: task.parallelism,
                    max: self.config.max_fanout,
                });
            }
            nodes.push(DagNode {
                id: FunctionId::from(i),
                name: task.name.clone(),
                kind: NodeKind::Function(task.profile),
                join: JoinKind::All,
                parallelism: task.parallelism,
            });
        }

        let mut seen_edges: HashSet<(FunctionId, FunctionId)> = HashSet::new();
        let mut edges = Vec::with_capacity(spec.edges.len());
        let mut data_edges = Vec::with_capacity(spec.edges.len());
        for (from_name, to_name) in &spec.edges {
            let from = *index
                .get(from_name.as_str())
                .ok_or_else(|| WdlError::UnknownTask {
                    name: from_name.clone(),
                })?;
            let to = *index
                .get(to_name.as_str())
                .ok_or_else(|| WdlError::UnknownTask {
                    name: to_name.clone(),
                })?;
            if from == to {
                return Err(WdlError::SelfLoop {
                    name: from_name.clone(),
                });
            }
            if !seen_edges.insert((from, to)) {
                return Err(WdlError::DuplicateEdge {
                    from: from_name.clone(),
                    to: to_name.clone(),
                });
            }
            let bytes = spec.tasks[from.index()].profile.output_bytes;
            edges.push(DagEdge {
                id: EdgeId(edges.len() as u32),
                from,
                to,
                bytes,
                weight: estimate_weight(&self.config, bytes),
                switch_arm: None,
            });
            data_edges.push(DataEdge {
                producer: from,
                consumer: to,
                bytes,
            });
        }

        check_acyclic(nodes.len(), &edges)?;
        Ok(WorkflowDag::assemble(
            name.to_string(),
            nodes,
            edges,
            data_edges,
        ))
    }
}

fn estimate_weight(config: &ParserConfig, bytes: u64) -> SimDuration {
    if bytes == 0 {
        return SimDuration::ZERO;
    }
    config.base_transfer_latency
        + SimDuration::from_secs_f64(bytes as f64 / config.reference_bandwidth)
}

/// Kahn's algorithm over the half-built edge list.
fn check_acyclic(node_count: usize, edges: &[DagEdge]) -> Result<(), WdlError> {
    let mut indeg = vec![0usize; node_count];
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); node_count];
    for e in edges {
        indeg[e.to.index()] += 1;
        succ[e.from.index()].push(e.to.index());
    }
    let mut stack: Vec<usize> = (0..node_count).filter(|&i| indeg[i] == 0).collect();
    let mut visited = 0;
    while let Some(v) = stack.pop() {
        visited += 1;
        for &s in &succ[v] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                stack.push(s);
            }
        }
    }
    if visited == node_count {
        Ok(())
    } else {
        let witness = indeg
            .iter()
            .position(|&d| d > 0)
            .expect("a cycle leaves positive in-degrees");
        Err(WdlError::Cycle {
            witness: format!("#{witness}"),
        })
    }
}

/// Incremental DAG construction state for the hierarchical lowering.
struct Builder {
    config: ParserConfig,
    nodes: Vec<DagNode>,
    edges: Vec<DagEdge>,
    virtual_counter: u32,
}

impl Builder {
    fn new(config: ParserConfig) -> Self {
        Builder {
            config,
            nodes: Vec::new(),
            edges: Vec::new(),
            virtual_counter: 0,
        }
    }

    fn validate_names(&self, root: &Step) -> Result<(), WdlError> {
        let mut seen = HashSet::new();
        let mut stack = vec![root];
        let mut any_fn = false;
        while let Some(step) = stack.pop() {
            match step {
                Step::Task { name, profile } => {
                    any_fn = true;
                    if !seen.insert(name.clone()) {
                        return Err(WdlError::DuplicateTaskName { name: name.clone() });
                    }
                    profile
                        .validate()
                        .map_err(|reason| WdlError::InvalidProfile {
                            name: name.clone(),
                            reason,
                        })?;
                }
                Step::Foreach {
                    name,
                    profile,
                    fanout,
                } => {
                    any_fn = true;
                    if !seen.insert(name.clone()) {
                        return Err(WdlError::DuplicateTaskName { name: name.clone() });
                    }
                    profile
                        .validate()
                        .map_err(|reason| WdlError::InvalidProfile {
                            name: name.clone(),
                            reason,
                        })?;
                    if *fanout == 0 {
                        return Err(WdlError::ZeroFanout { name: name.clone() });
                    }
                    if *fanout > self.config.max_fanout {
                        return Err(WdlError::FanoutTooLarge {
                            name: name.clone(),
                            fanout: *fanout,
                            max: self.config.max_fanout,
                        });
                    }
                }
                Step::Sequence { steps } => {
                    if steps.is_empty() {
                        return Err(WdlError::EmptyStep { kind: "sequence" });
                    }
                    stack.extend(steps.iter());
                }
                Step::Parallel { branches } => {
                    if branches.is_empty() {
                        return Err(WdlError::EmptyStep { kind: "parallel" });
                    }
                    stack.extend(branches.iter());
                }
                Step::Switch { cases } => {
                    if cases.is_empty() {
                        return Err(WdlError::EmptyStep { kind: "switch" });
                    }
                    stack.extend(cases.iter().map(|c| &c.step));
                }
            }
        }
        if any_fn {
            Ok(())
        } else {
            Err(WdlError::NoFunctions)
        }
    }

    fn add_node(&mut self, name: String, kind: NodeKind, join: JoinKind, par: u32) -> FunctionId {
        let id = FunctionId::from(self.nodes.len());
        self.nodes.push(DagNode {
            id,
            name,
            kind,
            join,
            parallelism: par,
        });
        id
    }

    fn add_edge(&mut self, from: FunctionId, to: FunctionId, arm: Option<u32>) {
        // Bytes are filled in by `finish` once relay volumes are known.
        self.edges.push(DagEdge {
            id: EdgeId(self.edges.len() as u32),
            from,
            to,
            bytes: 0,
            weight: SimDuration::ZERO,
            switch_arm: arm,
        });
    }

    fn fresh_virtual(&mut self, tag: &str) -> String {
        let name = format!("__{tag}_{}", self.virtual_counter);
        self.virtual_counter += 1;
        name
    }

    /// Lowers a step; returns its (entries, exits).
    fn lower(&mut self, step: &Step) -> Result<(Vec<FunctionId>, Vec<FunctionId>), WdlError> {
        match step {
            Step::Task { name, profile } => {
                let id =
                    self.add_node(name.clone(), NodeKind::Function(*profile), JoinKind::All, 1);
                Ok((vec![id], vec![id]))
            }
            Step::Foreach {
                name,
                profile,
                fanout,
            } => {
                // One node with `parallelism = fanout`, bracketed by virtual
                // start/end to keep the step atomic in partitioning.
                let vs_name = self.fresh_virtual("foreach_start");
                let vs = self.add_node(
                    vs_name,
                    NodeKind::VirtualStart { switch_arms: None },
                    JoinKind::All,
                    1,
                );
                let body = self.add_node(
                    name.clone(),
                    NodeKind::Function(*profile),
                    JoinKind::All,
                    *fanout,
                );
                let ve_name = self.fresh_virtual("foreach_end");
                let ve = self.add_node(ve_name, NodeKind::VirtualEnd, JoinKind::All, 1);
                self.add_edge(vs, body, None);
                self.add_edge(body, ve, None);
                Ok((vec![vs], vec![ve]))
            }
            Step::Sequence { steps } => {
                let mut entries = Vec::new();
                let mut prev_exits: Vec<FunctionId> = Vec::new();
                for (i, child) in steps.iter().enumerate() {
                    let (c_entries, c_exits) = self.lower(child)?;
                    if i == 0 {
                        entries = c_entries;
                    } else {
                        for &u in &prev_exits {
                            for &v in &c_entries {
                                self.add_edge(u, v, None);
                            }
                        }
                    }
                    prev_exits = c_exits;
                }
                Ok((entries, prev_exits))
            }
            Step::Parallel { branches } => {
                let vs_name = self.fresh_virtual("par_start");
                let vs = self.add_node(
                    vs_name,
                    NodeKind::VirtualStart { switch_arms: None },
                    JoinKind::All,
                    1,
                );
                let ve_name = self.fresh_virtual("par_end");
                let ve = self.add_node(ve_name, NodeKind::VirtualEnd, JoinKind::All, 1);
                for branch in branches {
                    let (entries, exits) = self.lower(branch)?;
                    for v in entries {
                        self.add_edge(vs, v, None);
                    }
                    for u in exits {
                        self.add_edge(u, ve, None);
                    }
                }
                Ok((vec![vs], vec![ve]))
            }
            Step::Switch { cases } => {
                let vs_name = self.fresh_virtual("switch_start");
                let vs = self.add_node(
                    vs_name,
                    NodeKind::VirtualStart {
                        switch_arms: Some(cases.len() as u32),
                    },
                    JoinKind::All,
                    1,
                );
                let ve_name = self.fresh_virtual("switch_end");
                // One arm completing suffices: Any join.
                let ve = self.add_node(ve_name, NodeKind::VirtualEnd, JoinKind::Any, 1);
                for (arm, case) in cases.iter().enumerate() {
                    let (entries, exits) = self.lower(&case.step)?;
                    for v in entries {
                        self.add_edge(vs, v, Some(arm as u32));
                    }
                    for u in exits {
                        self.add_edge(u, ve, None);
                    }
                }
                Ok((vec![vs], vec![ve]))
            }
        }
    }

    /// Fills in edge bytes/weights, derives data edges, and assembles.
    fn finish(mut self, name: &str) -> Result<WorkflowDag, WdlError> {
        // sources[v]: producers whose output arrives at v (through virtual
        // relays), as producer -> bytes. Computed in topological order.
        check_acyclic(self.nodes.len(), &self.edges)?;

        let n = self.nodes.len();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indeg = vec![0usize; n];
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &self.edges {
            preds[e.to.index()].push(e.from.index());
            succ[e.from.index()].push(e.to.index());
            indeg[e.to.index()] += 1;
        }
        let mut topo: Vec<usize> = Vec::with_capacity(n);
        let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        while let Some(v) = stack.pop() {
            topo.push(v);
            for &s in &succ[v] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    stack.push(s);
                }
            }
        }

        // Producer sets flowing into each node, deduplicated per producer.
        let mut sources: Vec<HashMap<usize, u64>> = vec![HashMap::new(); n];
        for &v in &topo {
            let mut incoming: HashMap<usize, u64> = HashMap::new();
            for &u in &preds[v] {
                match &self.nodes[u].kind {
                    NodeKind::Function(p) => {
                        incoming.insert(u, p.output_bytes);
                    }
                    _ => {
                        for (&prod, &bytes) in &sources[u] {
                            incoming.insert(prod, bytes);
                        }
                    }
                }
            }
            sources[v] = incoming;
        }

        // Data edges: for each *function* node, one edge per source producer.
        let mut data_edges = Vec::new();
        for (v, node_sources) in sources.iter().enumerate() {
            if !self.nodes[v].kind.is_function() {
                continue;
            }
            let mut inputs: Vec<(usize, u64)> =
                node_sources.iter().map(|(&p, &b)| (p, b)).collect();
            inputs.sort_unstable();
            for (producer, bytes) in inputs {
                if bytes > 0 {
                    data_edges.push(DataEdge {
                        producer: FunctionId::from(producer),
                        consumer: FunctionId::from(v),
                        bytes,
                    });
                }
            }
        }

        // Edge bytes: a function's edge carries its output; a virtual node's
        // edge relays the volume arriving at the bracket.
        let config = self.config;
        for e in &mut self.edges {
            let from = e.from.index();
            e.bytes = match &self.nodes[from].kind {
                NodeKind::Function(p) => p.output_bytes,
                _ => sources[from].values().sum(),
            };
            e.weight = estimate_weight(&config, e.bytes);
        }

        Ok(WorkflowDag::assemble(
            name.to_string(),
            self.nodes,
            self.edges,
            data_edges,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::FunctionProfile;
    use crate::step::SwitchCase;

    fn p(ms: u64, out: u64) -> FunctionProfile {
        FunctionProfile::with_millis(ms, out)
    }

    fn parse(wf: &Workflow) -> WorkflowDag {
        DagParser::default().parse(wf).expect("valid workflow")
    }

    #[test]
    fn task_sequence_lowers_to_a_chain() {
        let wf = Workflow::steps(
            "chain",
            Step::sequence(vec![
                Step::task("a", p(1, 100)),
                Step::task("b", p(1, 200)),
                Step::task("c", p(1, 0)),
            ]),
        );
        let dag = parse(&wf);
        assert_eq!(dag.node_count(), 3);
        assert_eq!(dag.edges().len(), 2);
        assert_eq!(dag.entry_nodes().len(), 1);
        assert_eq!(dag.exit_nodes().len(), 1);
        // Edge a->b carries a's output.
        let ab = &dag.edges()[0];
        assert_eq!(ab.bytes, 100);
        // Data edges mirror the chain.
        assert_eq!(dag.data_edges().len(), 2);
    }

    #[test]
    fn parallel_gets_virtual_brackets() {
        let wf = Workflow::steps(
            "par",
            Step::sequence(vec![
                Step::task("src", p(1, 1000)),
                Step::parallel(vec![Step::task("x", p(1, 10)), Step::task("y", p(1, 20))]),
                Step::task("sink", p(1, 0)),
            ]),
        );
        let dag = parse(&wf);
        // src, vs, x, y, ve, sink
        assert_eq!(dag.node_count(), 6);
        assert_eq!(dag.function_count(), 4);
        // x and y each read src's full output through the bracket.
        let x = dag.nodes().iter().find(|nd| nd.name == "x").unwrap().id;
        let inputs: Vec<_> = dag.data_inputs(x).collect();
        assert_eq!(inputs.len(), 1);
        assert_eq!(inputs[0].bytes, 1000);
        // sink reads both branch outputs.
        let sink = dag.nodes().iter().find(|nd| nd.name == "sink").unwrap().id;
        let sink_in: Vec<u64> = dag.data_inputs(sink).map(|d| d.bytes).collect();
        let mut sorted = sink_in.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![10, 20]);
        // The bracket's outgoing edge to sink relays x+y volume.
        let ve = dag
            .nodes()
            .iter()
            .find(|nd| matches!(nd.kind, NodeKind::VirtualEnd))
            .unwrap()
            .id;
        let out = dag.successors(ve);
        assert_eq!(out.len(), 1);
        assert_eq!(dag.edge(out[0].0).bytes, 30);
    }

    #[test]
    fn foreach_is_one_node_with_parallelism() {
        let wf = Workflow::steps(
            "fe",
            Step::sequence(vec![
                Step::task("split", p(1, 600)),
                Step::foreach("work", p(1, 300), 6),
                Step::task("merge", p(1, 0)),
            ]),
        );
        let dag = parse(&wf);
        let work = dag.nodes().iter().find(|nd| nd.name == "work").unwrap();
        assert_eq!(work.parallelism, 6);
        assert_eq!(dag.function_count(), 3);
        // merge reads work's total output.
        let merge = dag.nodes().iter().find(|nd| nd.name == "merge").unwrap().id;
        let inputs: Vec<_> = dag.data_inputs(merge).collect();
        assert_eq!(inputs.len(), 1);
        assert_eq!(inputs[0].bytes, 300);
    }

    #[test]
    fn switch_marks_arms_and_any_join() {
        let wf = Workflow::steps(
            "sw",
            Step::switch(vec![
                SwitchCase::new("hot", Step::task("hot_path", p(1, 10))),
                SwitchCase::new("cold", Step::task("cold_path", p(1, 10))),
            ]),
        );
        let dag = parse(&wf);
        let vs = dag
            .nodes()
            .iter()
            .find(|nd| {
                matches!(
                    nd.kind,
                    NodeKind::VirtualStart {
                        switch_arms: Some(2)
                    }
                )
            })
            .expect("switch start present");
        let arms: Vec<Option<u32>> = dag
            .successors(vs.id)
            .iter()
            .map(|&(e, _)| dag.edge(e).switch_arm)
            .collect();
        assert!(arms.contains(&Some(0)) && arms.contains(&Some(1)));
        let ve = dag
            .nodes()
            .iter()
            .find(|nd| matches!(nd.kind, NodeKind::VirtualEnd))
            .unwrap();
        assert_eq!(ve.join, JoinKind::Any);
        assert_eq!(dag.required_predecessors(ve.id), 1);
    }

    #[test]
    fn raw_dag_round_trips_structure() {
        let mut spec = DagSpec::new();
        spec.task("a", p(1, 100))
            .task("b", p(1, 50))
            .task("c", p(1, 0))
            .edge("a", "b")
            .edge("a", "c")
            .edge("b", "c");
        let dag = parse(&Workflow::dag("raw", spec));
        assert_eq!(dag.node_count(), 3);
        assert_eq!(dag.edges().len(), 3);
        assert_eq!(dag.total_data_bytes(), 100 + 100 + 50);
    }

    #[test]
    fn rejects_duplicate_names() {
        let wf = Workflow::steps(
            "dup",
            Step::sequence(vec![Step::task("a", p(1, 0)), Step::task("a", p(1, 0))]),
        );
        assert!(matches!(
            DagParser::default().parse(&wf),
            Err(WdlError::DuplicateTaskName { .. })
        ));
    }

    #[test]
    fn rejects_cycles_in_raw_dags() {
        let mut spec = DagSpec::new();
        spec.task("a", p(1, 1))
            .task("b", p(1, 1))
            .edge("a", "b")
            .edge("b", "a");
        assert!(matches!(
            DagParser::default().parse(&Workflow::dag("cyc", spec)),
            Err(WdlError::Cycle { .. })
        ));
    }

    #[test]
    fn rejects_self_loops_unknown_tasks_and_duplicate_edges() {
        let mut s1 = DagSpec::new();
        s1.task("a", p(1, 1)).edge("a", "a");
        assert!(matches!(
            DagParser::default().parse(&Workflow::dag("w", s1)),
            Err(WdlError::SelfLoop { .. })
        ));

        let mut s2 = DagSpec::new();
        s2.task("a", p(1, 1)).edge("a", "ghost");
        assert!(matches!(
            DagParser::default().parse(&Workflow::dag("w", s2)),
            Err(WdlError::UnknownTask { .. })
        ));

        let mut s3 = DagSpec::new();
        s3.task("a", p(1, 1))
            .task("b", p(1, 1))
            .edge("a", "b")
            .edge("a", "b");
        assert!(matches!(
            DagParser::default().parse(&Workflow::dag("w", s3)),
            Err(WdlError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn rejects_empty_steps_and_zero_fanout() {
        let empty_seq = Workflow::steps("e", Step::sequence(vec![]));
        assert!(matches!(
            DagParser::default().parse(&empty_seq),
            Err(WdlError::EmptyStep { kind: "sequence" })
        ));
        let zero = Workflow::steps("z", Step::foreach("f", p(1, 1), 0));
        assert!(matches!(
            DagParser::default().parse(&zero),
            Err(WdlError::ZeroFanout { .. })
        ));
        let big = Workflow::steps("b", Step::foreach("f", p(1, 1), 100_000));
        assert!(matches!(
            DagParser::default().parse(&big),
            Err(WdlError::FanoutTooLarge { .. })
        ));
    }

    #[test]
    fn weight_estimate_scales_with_bytes() {
        let cfg = ParserConfig::default();
        let small = estimate_weight(&cfg, 1_000);
        let large = estimate_weight(&cfg, 50_000_000);
        assert!(large > small);
        // 50 MB at 50 MB/s = 1 s (+ base).
        assert!((large.as_secs_f64() - 1.002).abs() < 1e-9);
        assert_eq!(estimate_weight(&cfg, 0), SimDuration::ZERO);
    }

    #[test]
    fn nested_structures_compose() {
        // parallel inside foreach-ish sequence inside switch arm
        let wf = Workflow::steps(
            "nest",
            Step::switch(vec![
                SwitchCase::new(
                    "arm0",
                    Step::sequence(vec![
                        Step::task("s0", p(1, 5)),
                        Step::parallel(vec![Step::task("p0", p(1, 5)), Step::task("p1", p(1, 5))]),
                    ]),
                ),
                SwitchCase::new("arm1", Step::foreach("fe", p(1, 5), 3)),
            ]),
        );
        let dag = parse(&wf);
        assert_eq!(dag.function_count(), 4);
        // Every virtual node must have at least one pred and succ except
        // the outer brackets.
        let topo_len = dag.topo_order().len();
        assert_eq!(topo_len, dag.node_count());
    }
}
