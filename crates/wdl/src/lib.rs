//! # faasflow-wdl
//!
//! The Workflow Definition Language (WDL) and DAG parser of the FaaSFlow
//! reproduction (§4.1.1 of the paper).
//!
//! A workflow is defined either as a hierarchy of logic steps — **task,
//! sequence, parallel, switch, foreach** — or as a raw DAG (the form the
//! Pegasus scientific-workflow instances arrive in). The [`DagParser`]
//! lowers both to a [`WorkflowDag`]:
//!
//! * every task step becomes a function node;
//! * parallel / switch / foreach steps are bracketed by **virtual start and
//!   end nodes** that carry no computation and exist only to keep the step
//!   atomic during graph partitioning (§4.1.1);
//! * switch virtual ends join with *any* semantics (one arm suffices),
//!   everything else joins with *all* semantics;
//! * a foreach step becomes a single node with a `parallelism` (the paper's
//!   executor map `Map(v)`), exactly as "DAG Parser equally considers all
//!   parallel instances in the foreach step as one node";
//! * **control edges** drive triggering and partitioning; **data edges**
//!   connect real producers to real consumers through the virtual nodes and
//!   drive the actual byte transfers.
//!
//! The paper's definition file is `workflow.yaml`; the serde data model here
//! serializes to JSON instead (a pure serialization-format substitution,
//! documented in DESIGN.md).
//!
//! ```
//! use faasflow_wdl::{Workflow, Step, FunctionProfile, DagParser};
//!
//! let wf = Workflow::steps(
//!     "thumbnail",
//!     Step::sequence(vec![
//!         Step::task("fetch", FunctionProfile::with_millis(20, 2 << 20)),
//!         Step::foreach(
//!             "resize",
//!             FunctionProfile::with_millis(80, 1 << 20),
//!             4,
//!         ),
//!         Step::task("store", FunctionProfile::with_millis(15, 0)),
//!     ]),
//! );
//! let dag = DagParser::default().parse(&wf).expect("valid workflow");
//! assert_eq!(dag.function_count(), 3);   // fetch, resize, store
//! assert_eq!(dag.node_count(), 5);       // + virtual start/end of foreach
//! ```

pub mod dag;
pub mod error;
pub mod parser;
pub mod profile;
pub mod step;
pub mod text;

pub use dag::{DagEdge, DagNode, DataEdge, EdgeId, JoinKind, NodeKind, WorkflowDag};
pub use error::WdlError;
pub use parser::{DagParser, ParserConfig};
pub use profile::FunctionProfile;
pub use step::{DagSpec, DagTask, Step, SwitchCase, Workflow, WorkflowSpec};
