//! Property tests: the DAG parser on randomly generated workflow trees.

use faasflow_sim::FunctionId;
use faasflow_wdl::{DagParser, FunctionProfile, NodeKind, Step, SwitchCase, Workflow};
use proptest::prelude::*;

/// A random step tree with unique task names.
fn step_strategy() -> impl Strategy<Value = Step> {
    let leaf = (1u64..500, 0u64..(64 << 20), 1u32..6).prop_map(|(ms, out, fan)| {
        // Name filled during uniquification below.
        if fan == 1 {
            Step::task("x", FunctionProfile::with_millis(ms, out))
        } else {
            Step::foreach("x", FunctionProfile::with_millis(ms, out), fan)
        }
    });
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Step::sequence),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Step::parallel),
            proptest::collection::vec(inner, 1..3).prop_map(|steps| {
                Step::switch(
                    steps
                        .into_iter()
                        .enumerate()
                        .map(|(i, s)| SwitchCase::new(format!("case{i}"), s))
                        .collect(),
                )
            }),
        ]
    })
}

/// Gives every task/foreach node a unique name.
fn uniquify(step: &mut Step, counter: &mut u32) {
    match step {
        Step::Task { name, .. } | Step::Foreach { name, .. } => {
            *name = format!("fn{counter}");
            *counter += 1;
        }
        Step::Sequence { steps } => steps.iter_mut().for_each(|s| uniquify(s, counter)),
        Step::Parallel { branches } => branches.iter_mut().for_each(|s| uniquify(s, counter)),
        Step::Switch { cases } => cases
            .iter_mut()
            .for_each(|c| uniquify(&mut c.step, counter)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated tree parses; the DAG is acyclic and structurally
    /// sound; data edges reference only function nodes; function count is
    /// preserved; the serde form round-trips.
    #[test]
    fn random_trees_parse_soundly(mut step in step_strategy()) {
        let mut counter = 0;
        uniquify(&mut step, &mut counter);
        let expected_functions = step.function_count();
        let wf = Workflow::steps("prop", step);

        // Serde round trip.
        let json = serde_json::to_string(&wf).expect("serializes");
        let back: Workflow = serde_json::from_str(&json).expect("deserializes");
        prop_assert_eq!(&back, &wf);

        let dag = DagParser::default().parse(&wf).expect("valid tree parses");
        prop_assert_eq!(dag.function_count(), expected_functions);
        // Topological order covers every node exactly once (acyclicity).
        prop_assert_eq!(dag.topo_order().len(), dag.node_count());
        // Entry and exit nodes exist.
        prop_assert!(!dag.entry_nodes().is_empty());
        prop_assert!(!dag.exit_nodes().is_empty());
        // Data edges connect function nodes only, with positive payloads.
        for d in dag.data_edges() {
            prop_assert!(dag.node(d.producer).kind.is_function());
            prop_assert!(dag.node(d.consumer).kind.is_function());
            prop_assert!(d.bytes > 0);
        }
        // Control edges are within range, weights consistent with bytes.
        for e in dag.edges() {
            prop_assert!(e.from.index() < dag.node_count());
            prop_assert!(e.to.index() < dag.node_count());
            if e.bytes == 0 {
                prop_assert!(e.weight.is_zero());
            }
        }
        // Virtual nodes never carry a profile; function nodes always do.
        for node in dag.nodes() {
            match &node.kind {
                NodeKind::Function(_) => prop_assert!(node.kind.profile().is_some()),
                _ => prop_assert!(node.kind.profile().is_none()),
            }
        }
        // The critical path is a real path: consecutive nodes connected.
        let (nodes, edges) = dag.critical_path();
        prop_assert_eq!(nodes.len(), edges.len() + 1);
        for (i, &eid) in edges.iter().enumerate() {
            let e = dag.edge(eid);
            prop_assert_eq!(e.from, nodes[i]);
            prop_assert_eq!(e.to, nodes[i + 1]);
        }
    }

    /// `required_predecessors` is consistent with join kinds.
    #[test]
    fn join_semantics_consistent(mut step in step_strategy()) {
        let mut counter = 0;
        uniquify(&mut step, &mut counter);
        let wf = Workflow::steps("prop", step);
        let dag = DagParser::default().parse(&wf).expect("parses");
        for i in 0..dag.node_count() {
            let id = FunctionId::from(i);
            let req = dag.required_predecessors(id);
            let preds = dag.predecessors(id).len() as u32;
            prop_assert!(req <= preds.max(1));
            if preds > 0 {
                prop_assert!(req >= 1);
            } else {
                prop_assert_eq!(req, 0);
            }
        }
    }
}
