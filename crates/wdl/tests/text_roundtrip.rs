//! Property test: the compact text format round-trips every expressible
//! workflow tree.

use faasflow_wdl::text::{parse_text, to_text};
use faasflow_wdl::{DagParser, FunctionProfile, Step, SwitchCase, Workflow};
use proptest::prelude::*;

/// Trees expressible in the text format: names are identifiers, durations
/// whole milliseconds, sizes whole bytes.
fn step_strategy() -> impl Strategy<Value = Step> {
    let leaf = (1u64..5000, 0u64..(1 << 28), 1u32..8).prop_map(|(ms, out, fan)| {
        let profile = FunctionProfile::with_millis(ms, out);
        if fan == 1 {
            Step::task("x", profile)
        } else {
            Step::foreach("x", profile, fan)
        }
    });
    leaf.prop_recursive(3, 20, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Step::sequence),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Step::parallel),
            proptest::collection::vec(inner, 1..3).prop_map(|steps| {
                Step::switch(
                    steps
                        .into_iter()
                        .enumerate()
                        .map(|(i, s)| SwitchCase::new(format!("arm{i}"), s))
                        .collect(),
                )
            }),
        ]
    })
}

fn uniquify(step: &mut Step, counter: &mut u32) {
    match step {
        Step::Task { name, .. } | Step::Foreach { name, .. } => {
            *name = format!("fn{counter}");
            *counter += 1;
        }
        Step::Sequence { steps } => steps.iter_mut().for_each(|s| uniquify(s, counter)),
        Step::Parallel { branches } => branches.iter_mut().for_each(|s| uniquify(s, counter)),
        Step::Switch { cases } => cases
            .iter_mut()
            .for_each(|c| uniquify(&mut c.step, counter)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn text_round_trip_preserves_structure(mut step in step_strategy()) {
        let mut counter = 0;
        uniquify(&mut step, &mut counter);
        let wf = Workflow::steps("prop", step);

        let text = to_text(&wf).expect("steps form renders");
        let back = parse_text(&text)
            .unwrap_or_else(|e| panic!("rendered text must re-parse: {e}\n{text}"));
        prop_assert_eq!(&back.name, &wf.name);

        let parser = DagParser::default();
        let a = parser.parse(&wf).expect("original parses");
        let b = parser.parse(&back).expect("round-tripped parses");
        prop_assert_eq!(a.node_count(), b.node_count());
        prop_assert_eq!(a.edges().len(), b.edges().len());
        prop_assert_eq!(a.total_data_bytes(), b.total_data_bytes());
        for (na, nb) in a.nodes().iter().zip(b.nodes()) {
            prop_assert_eq!(&na.name, &nb.name);
            prop_assert_eq!(na.parallelism, nb.parallelism);
            prop_assert_eq!(na.join, nb.join);
            if let (Some(pa), Some(pb)) = (na.kind.profile(), nb.kind.profile()) {
                prop_assert_eq!(pa.exec_mean, pb.exec_mean);
                prop_assert_eq!(pa.output_bytes, pb.output_bytes);
                prop_assert_eq!(pa.peak_mem_bytes, pb.peak_mem_bytes);
            }
        }
    }
}
