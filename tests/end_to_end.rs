//! End-to-end integration tests: every benchmark completes under every
//! system configuration, deterministically.

use faasflow::core::{ClientConfig, Cluster, ClusterConfig, ClusterError, ScheduleMode};
use faasflow::wdl::{FunctionProfile, Step, SwitchCase, Workflow};
use faasflow::workloads::Benchmark;

fn configs() -> Vec<(&'static str, ClusterConfig)> {
    vec![
        (
            "hyperflow-serverless",
            ClusterConfig {
                mode: ScheduleMode::MasterSp,
                faastore: false,
                ..ClusterConfig::default()
            },
        ),
        (
            "faasflow",
            ClusterConfig {
                mode: ScheduleMode::WorkerSp,
                faastore: false,
                ..ClusterConfig::default()
            },
        ),
        (
            "faasflow-faastore",
            ClusterConfig {
                mode: ScheduleMode::WorkerSp,
                faastore: true,
                ..ClusterConfig::default()
            },
        ),
    ]
}

#[test]
fn every_benchmark_completes_under_every_system() {
    for (label, config) in configs() {
        for b in Benchmark::ALL {
            let mut cluster = Cluster::new(config.clone()).expect("valid config");
            cluster
                .register(&b.workflow(), ClientConfig::ClosedLoop { invocations: 3 })
                .expect("benchmark registers");
            cluster.run_until_idle();
            let report = cluster.report();
            let w = report.workflow(b.short_name());
            assert_eq!(w.completed, 3, "{b} under {label} must complete");
            assert_eq!(w.timeouts, 0, "{b} under {label} must not time out");
            assert!(w.e2e.mean > 0.0);
            assert_eq!(
                report.live_invocation_states, 0,
                "{b} under {label} leaks invocation state"
            );
        }
    }
}

#[test]
fn same_seed_is_bit_identical() {
    let run = || {
        let mut cluster = Cluster::new(ClusterConfig::default()).expect("valid config");
        for b in [Benchmark::VideoFfmpeg, Benchmark::WordCount] {
            cluster
                .register(&b.workflow(), ClientConfig::ClosedLoop { invocations: 10 })
                .expect("registers");
        }
        cluster.run_until_idle();
        cluster.report()
    };
    assert_eq!(run(), run(), "identical seeds must give identical reports");
}

#[test]
fn different_seeds_differ() {
    let run = |seed| {
        let config = ClusterConfig {
            seed,
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::new(config).expect("valid config");
        cluster
            .register(
                &Benchmark::VideoFfmpeg.workflow(),
                ClientConfig::ClosedLoop { invocations: 10 },
            )
            .expect("registers");
        cluster.run_until_idle();
        cluster.report().workflow("Vid").e2e.mean
    };
    assert_ne!(run(1), run(2), "jitter must depend on the seed");
}

#[test]
fn switch_workflows_run_exactly_one_arm() {
    let wf = Workflow::steps(
        "switchy",
        Step::sequence(vec![
            Step::task("in", FunctionProfile::with_millis(10, 1 << 20)),
            Step::switch(vec![
                SwitchCase::new(
                    "a",
                    Step::task("arm_a", FunctionProfile::with_millis(10, 1000)),
                ),
                SwitchCase::new(
                    "b",
                    Step::task("arm_b", FunctionProfile::with_millis(10, 1000)),
                ),
                SwitchCase::new(
                    "c",
                    Step::task("arm_c", FunctionProfile::with_millis(10, 1000)),
                ),
            ]),
            Step::task("out", FunctionProfile::with_millis(10, 0)),
        ]),
    );
    for (label, config) in configs() {
        let mut cluster = Cluster::new(config).expect("valid config");
        cluster
            .register(&wf, ClientConfig::ClosedLoop { invocations: 30 })
            .expect("registers");
        cluster.run_until_idle();
        let report = cluster.report();
        let w = report.workflow("switchy");
        assert_eq!(w.completed, 30, "switch workflow under {label}");
        assert_eq!(w.timeouts, 0);
    }
}

#[test]
fn open_loop_overload_times_out_and_recovers() {
    // Cycles through a starved 10 MB/s storage node at a rate far above
    // capacity: the 60 s timeout must fire, and the run must still drain.
    let config = ClusterConfig {
        mode: ScheduleMode::MasterSp,
        faastore: false,
        storage_bandwidth: 10e6,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(config).expect("valid config");
    cluster
        .register(
            &Benchmark::Cycles.workflow(),
            ClientConfig::OpenLoop {
                per_minute: 10.0,
                invocations: 8,
            },
        )
        .expect("registers");
    cluster.run_until_idle();
    let report = cluster.report();
    let w = report.workflow("Cyc");
    assert!(w.timeouts > 0, "overload must trigger timeouts");
    assert!(w.e2e.p99 >= 60_000.0, "timeouts are recorded at the cap");
    assert_eq!(w.completed, 8, "all invocations eventually finish");
}

#[test]
fn manual_clients_and_run_until() {
    let mut cluster = Cluster::new(ClusterConfig::default()).expect("valid config");
    let id = cluster
        .register(&Benchmark::WordCount.workflow(), ClientConfig::Manual)
        .expect("registers");
    cluster.invoke_now(id);
    cluster.invoke_now(id);
    // Step the clock in small slices — identical outcome to run_until_idle.
    for step in 1..200 {
        cluster.run_until(faasflow::sim::SimTime::from_secs_f64(step as f64 * 0.1));
        if cluster.report().workflow("WC").completed == 2 {
            break;
        }
    }
    assert_eq!(cluster.report().workflow("WC").completed, 2);
}

#[test]
fn duplicate_and_invalid_registrations_error() {
    let mut cluster = Cluster::new(ClusterConfig::default()).expect("valid config");
    let wf = Benchmark::WordCount.workflow();
    cluster
        .register(&wf, ClientConfig::ClosedLoop { invocations: 1 })
        .expect("first registration");
    let err = cluster
        .register(&wf, ClientConfig::ClosedLoop { invocations: 1 })
        .expect_err("duplicate must fail");
    assert!(matches!(err, ClusterError::DuplicateWorkflow(_)));

    let bad_client = cluster.register(
        &Benchmark::VideoFfmpeg.workflow(),
        ClientConfig::ClosedLoop { invocations: 0 },
    );
    assert!(matches!(bad_client, Err(ClusterError::InvalidClient(_))));
}

#[test]
fn invalid_configs_are_rejected() {
    let bad = ClusterConfig {
        workers: 0,
        ..ClusterConfig::default()
    };
    assert!(matches!(
        Cluster::new(bad),
        Err(ClusterError::InvalidConfig(_))
    ));
    let bad = ClusterConfig {
        mode: ScheduleMode::MasterSp,
        faastore: true,
        ..ClusterConfig::default()
    };
    assert!(Cluster::new(bad).is_err());
}

#[test]
fn repartition_iterations_keep_the_cluster_correct() {
    let config = ClusterConfig {
        repartition_every: Some(5),
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(config).expect("valid config");
    cluster
        .register(
            &Benchmark::Genome.workflow(),
            ClientConfig::ClosedLoop { invocations: 25 },
        )
        .expect("registers");
    cluster.run_until_idle();
    let report = cluster.report();
    assert_eq!(report.workflow("Gen").completed, 25);
    let (_, runs) = cluster.partition_wall_time();
    assert!(
        runs >= 5,
        "feedback iterations must re-partition ({runs} runs)"
    );
}
