//! Whole-system property tests: randomly generated workflows must run to
//! completion under both schedule patterns, with conserved accounting.

use faasflow::core::{ClientConfig, Cluster, ClusterConfig, ScheduleMode};
use faasflow::wdl::{FunctionProfile, Step, SwitchCase, Workflow};
use proptest::prelude::*;

fn step_strategy() -> impl Strategy<Value = Step> {
    let leaf = (1u64..100, 0u64..(8 << 20), 1u32..5).prop_map(|(ms, out, fan)| {
        if fan == 1 {
            Step::task("x", FunctionProfile::with_millis(ms, out))
        } else {
            Step::foreach("x", FunctionProfile::with_millis(ms, out), fan)
        }
    });
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Step::sequence),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Step::parallel),
            proptest::collection::vec(inner, 1..3).prop_map(|steps| {
                Step::switch(
                    steps
                        .into_iter()
                        .enumerate()
                        .map(|(i, s)| SwitchCase::new(format!("c{i}"), s))
                        .collect(),
                )
            }),
        ]
    })
}

fn uniquify(step: &mut Step, counter: &mut u32) {
    match step {
        Step::Task { name, .. } | Step::Foreach { name, .. } => {
            *name = format!("fn{counter}");
            *counter += 1;
        }
        Step::Sequence { steps } => steps.iter_mut().for_each(|s| uniquify(s, counter)),
        Step::Parallel { branches } => branches.iter_mut().for_each(|s| uniquify(s, counter)),
        Step::Switch { cases } => cases
            .iter_mut()
            .for_each(|c| uniquify(&mut c.step, counter)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Liveness + conservation: every random workflow completes in both
    /// modes; no state leaks; local+remote bytes equal the measured total.
    #[test]
    fn random_workflows_complete_everywhere(
        mut step in step_strategy(),
        seed in any::<u64>(),
    ) {
        let mut counter = 0;
        uniquify(&mut step, &mut counter);
        let wf = Workflow::steps("prop", step);

        for mode in [ScheduleMode::WorkerSp, ScheduleMode::MasterSp] {
            let config = ClusterConfig {
                mode,
                faastore: mode == ScheduleMode::WorkerSp,
                seed,
                ..ClusterConfig::default()
            };
            let mut cluster = Cluster::new(config).expect("valid config");
            cluster
                .register(&wf, ClientConfig::ClosedLoop { invocations: 3 })
                .expect("random tree registers");
            cluster.run_until_idle();
            let report = cluster.report();
            let w = report.workflow("prop");
            prop_assert_eq!(w.completed, 3, "incomplete under {:?}", mode);
            prop_assert_eq!(report.live_invocation_states, 0);
            // Conservation: per-invocation means times count equal totals.
            let measured = (w.bytes_moved.mean * w.bytes_moved.count as f64).round() as u64;
            prop_assert_eq!(w.remote_bytes + w.local_bytes, measured);
        }
    }
}
