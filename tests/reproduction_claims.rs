//! The paper's headline claims, verified end-to-end at reduced scale — a
//! CI-able reproduction gate. Bands are deliberately wide: they pin the
//! *shape* (who wins, roughly by how much), not the calibration.

use faasflow::core::{ClientConfig, Cluster, ClusterConfig, ScheduleMode};
use faasflow::workloads::{without_data, Benchmark};

fn cluster(mode: ScheduleMode, faastore: bool) -> Cluster {
    Cluster::new(ClusterConfig {
        mode,
        faastore,
        ..ClusterConfig::default()
    })
    .expect("valid config")
}

fn steady_state(
    mode: ScheduleMode,
    faastore: bool,
    wf: &faasflow::wdl::Workflow,
    n: u32,
) -> faasflow::core::WorkflowReport {
    let mut cluster = cluster(mode, faastore);
    let id = cluster
        .register(wf, ClientConfig::ClosedLoop { invocations: 3 })
        .expect("registers");
    cluster.run_until_idle();
    cluster.reset_metrics();
    cluster.extend_client(id, n);
    cluster.run_until_idle();
    cluster.report().workflow(&wf.name).clone()
}

/// §5.2 / Figure 11: "FaaSFlow reduces the scheduling overhead [...] all
/// applications can achieve an average of 74.6% scheduling overhead
/// optimization".
#[test]
fn claim_worker_sp_cuts_scheduling_overhead_by_more_than_half() {
    let mut master_total = 0.0;
    let mut worker_total = 0.0;
    for b in Benchmark::ALL {
        let wf = without_data(&b.workflow());
        let master = steady_state(ScheduleMode::MasterSp, false, &wf, 40);
        let worker = steady_state(ScheduleMode::WorkerSp, true, &wf, 40);
        assert!(
            worker.sched_overhead.mean < master.sched_overhead.mean,
            "{b}: WorkerSP must win ({} vs {})",
            worker.sched_overhead.mean,
            master.sched_overhead.mean
        );
        master_total += master.sched_overhead.mean;
        worker_total += worker.sched_overhead.mean;
    }
    let reduction = 1.0 - worker_total / master_total;
    assert!(
        (0.5..0.95).contains(&reduction),
        "average reduction {reduction:.2} outside the plausible band around 74.6%"
    );
}

/// §5.3 / Table 4: FaaStore's transmission reduction is ordered by
/// topology — chains localise almost fully, cross-coupled barely.
#[test]
fn claim_table4_reduction_ordering() {
    let reduction = |b: Benchmark| {
        let wf = b.workflow();
        let hf = steady_state(ScheduleMode::MasterSp, false, &wf, 10);
        let ff = steady_state(ScheduleMode::WorkerSp, true, &wf, 10);
        1.0 - ff.transfer_total.mean / hf.transfer_total.mean
    };
    let cyc = reduction(Benchmark::Cycles);
    let gen = reduction(Benchmark::Genome);
    let soy = reduction(Benchmark::SoyKb);
    assert!(cyc > 0.8, "Cyc chains must localise almost fully: {cyc:.2}");
    assert!(
        (0.1..0.6).contains(&gen),
        "Gen's hot shared objects localise partially: {gen:.2}"
    );
    assert!(soy < 0.45, "Soy's shared reference resists: {soy:.2}");
    assert!(cyc > gen && gen > soy, "ordering Cyc > Gen > Soy");
}

/// §5.4 / Figures 12–13: under a 50 MB/s storage NIC at 6/min, the
/// baseline times out on Cycles while FaaSFlow-FaaStore survives.
#[test]
fn claim_bandwidth_starved_baseline_times_out() {
    let run = |mode, faastore| {
        let mut cluster = cluster(mode, faastore);
        let id = cluster
            .register(
                &Benchmark::Cycles.workflow(),
                ClientConfig::ClosedLoop { invocations: 2 },
            )
            .expect("registers");
        cluster.run_until_idle();
        cluster.reset_metrics();
        cluster.switch_to_open_loop(id, 6.0, 25);
        cluster.run_until_idle();
        cluster.report().workflow("Cyc").clone()
    };
    let hf = run(ScheduleMode::MasterSp, false);
    let ff = run(ScheduleMode::WorkerSp, true);
    assert!(hf.timeouts > 0, "the baseline must hit the 60 s timeout");
    assert_eq!(ff.timeouts, 0, "FaaSFlow-FaaStore must survive");
    assert!(ff.e2e.p99 < 60_000.0);
}

/// §5.5 / Figure 15: scientific workflows spread across all 7 workers;
/// small applications stay on 1–2.
#[test]
fn claim_figure15_distribution() {
    let mut cluster = cluster(ScheduleMode::WorkerSp, true);
    let mut ids = Vec::new();
    for b in Benchmark::ALL {
        ids.push((
            b,
            cluster
                .register(&b.workflow(), ClientConfig::ClosedLoop { invocations: 1 })
                .expect("registers"),
        ));
    }
    cluster.run_until_idle();
    for (b, id) in ids {
        let workers = cluster.distribution(id).len();
        if Benchmark::SCIENTIFIC.contains(&b) {
            assert_eq!(workers, 7, "{b} must spread across all workers");
        } else {
            assert!(workers <= 2, "{b} must stay on 1-2 workers, got {workers}");
        }
    }
}

/// §6: "FaaSFlow-FaaStore is able to increase the network bandwidth
/// utilization by up to 1.5X or 4X" — equivalently, at the same offered
/// load it pushes far fewer bytes through the storage NIC.
#[test]
fn claim_storage_nic_relief() {
    let storage_bytes = |mode, faastore| {
        let mut c = cluster(mode, faastore);
        c.register(
            &Benchmark::VideoFfmpeg.workflow(),
            ClientConfig::ClosedLoop { invocations: 10 },
        )
        .expect("registers");
        c.run_until_idle();
        c.report().storage_node_bytes as f64
    };
    let hf = storage_bytes(ScheduleMode::MasterSp, false);
    let ff = storage_bytes(ScheduleMode::WorkerSp, true);
    assert!(
        hf / ff >= 1.5,
        "the NIC relief factor must be at least 1.5x, got {:.2}",
        hf / ff
    );
}
