//! Metamorphic integration tests: relations between runs that must hold
//! regardless of calibration constants.

use faasflow::core::{ClientConfig, Cluster, ClusterConfig, RunReport, ScheduleMode};
use faasflow::workloads::{without_data, Benchmark};

fn run(config: ClusterConfig, b: Benchmark, invocations: u32) -> RunReport {
    let mut cluster = Cluster::new(config).expect("valid config");
    let id = cluster
        .register(&b.workflow(), ClientConfig::ClosedLoop { invocations: 2 })
        .expect("registers");
    cluster.run_until_idle();
    cluster.reset_metrics();
    cluster.extend_client(id, invocations);
    cluster.run_until_idle();
    cluster.report()
}

fn faasflow(faastore: bool) -> ClusterConfig {
    ClusterConfig {
        mode: ScheduleMode::WorkerSp,
        faastore,
        ..ClusterConfig::default()
    }
}

fn hyperflow() -> ClusterConfig {
    ClusterConfig {
        mode: ScheduleMode::MasterSp,
        faastore: false,
        ..ClusterConfig::default()
    }
}

#[test]
fn more_bandwidth_never_hurts_transfers() {
    for b in [Benchmark::VideoFfmpeg, Benchmark::WordCount] {
        let mut prev = f64::INFINITY;
        for bw in [25e6, 50e6, 100e6] {
            let config = ClusterConfig {
                storage_bandwidth: bw,
                ..hyperflow()
            };
            let t = run(config, b, 10)
                .workflow(b.short_name())
                .transfer_total
                .mean;
            assert!(
                t <= prev * 1.02,
                "{b}: transfer latency rose from {prev:.1} to {t:.1} ms with more bandwidth"
            );
            prev = t;
        }
    }
}

#[test]
fn faastore_reduces_remote_traffic_without_hurting_latency() {
    for b in [
        Benchmark::Cycles,
        Benchmark::VideoFfmpeg,
        Benchmark::WordCount,
    ] {
        let off = run(faasflow(false), b, 10);
        let on = run(faasflow(true), b, 10);
        let w_off = off.workflow(b.short_name());
        let w_on = on.workflow(b.short_name());
        assert!(
            w_on.remote_bytes < w_off.remote_bytes,
            "{b}: FaaStore must cut remote traffic ({} vs {})",
            w_on.remote_bytes,
            w_off.remote_bytes
        );
        assert!(w_on.local_bytes > 0, "{b}: FaaStore must serve local bytes");
        assert!(
            w_on.e2e.mean <= w_off.e2e.mean * 1.05,
            "{b}: FaaStore must not slow the workflow ({} vs {})",
            w_on.e2e.mean,
            w_off.e2e.mean
        );
        assert!(
            on.storage_node_bytes < off.storage_node_bytes,
            "{b}: storage NIC traffic must drop"
        );
    }
}

#[test]
fn workersp_eliminates_master_messaging() {
    let b = Benchmark::Epigenomics;
    let master = run(hyperflow(), b, 5);
    let worker = run(faasflow(true), b, 5);
    assert!(master.master_tasks_assigned > 0);
    assert!(master.master_state_returns > 0);
    assert_eq!(master.worker_syncs, 0, "no worker syncs under MasterSP");
    assert_eq!(
        worker.master_tasks_assigned, 0,
        "no assignments under WorkerSP"
    );
    assert_eq!(worker.master_state_returns, 0);
    assert!(
        worker.worker_syncs > 0,
        "a spread workflow must sync states across workers"
    );
    assert!(
        worker.master_busy_fraction < master.master_busy_fraction,
        "the master CPU must be relieved"
    );
}

#[test]
fn workersp_cuts_scheduling_overhead_on_data_free_workflows() {
    for b in [Benchmark::Cycles, Benchmark::WordCount] {
        let wf = without_data(&b.workflow());
        let measure = |config: ClusterConfig| {
            let mut cluster = Cluster::new(config).expect("valid config");
            let id = cluster
                .register(&wf, ClientConfig::ClosedLoop { invocations: 3 })
                .expect("registers");
            cluster.run_until_idle();
            cluster.reset_metrics();
            cluster.extend_client(id, 30);
            cluster.run_until_idle();
            cluster.report().workflow(&wf.name).sched_overhead.mean
        };
        let master = measure(hyperflow());
        let worker = measure(faasflow(true));
        assert!(
            worker < master * 0.75,
            "{b}: WorkerSP overhead {worker:.1} ms not clearly below MasterSP {master:.1} ms"
        );
    }
}

#[test]
fn colocation_never_beats_solo() {
    // Run Vid solo, then Vid together with Cyc; co-run latency >= solo.
    let solo = run(faasflow(true), Benchmark::VideoFfmpeg, 8)
        .workflow("Vid")
        .e2e
        .mean;
    let mut cluster = Cluster::new(faasflow(true)).expect("valid config");
    let vid = cluster
        .register(
            &Benchmark::VideoFfmpeg.workflow(),
            ClientConfig::ClosedLoop { invocations: 2 },
        )
        .expect("registers");
    let cyc = cluster
        .register(
            &Benchmark::Cycles.workflow(),
            ClientConfig::ClosedLoop { invocations: 2 },
        )
        .expect("registers");
    cluster.run_until_idle();
    cluster.reset_metrics();
    cluster.extend_client(vid, 8);
    cluster.extend_client(cyc, 8);
    cluster.run_until_idle();
    let co = cluster.report().workflow("Vid").e2e.mean;
    assert!(
        co >= solo * 0.98,
        "co-running with Cycles cannot speed Vid up (solo {solo:.1}, co {co:.1})"
    );
}

#[test]
fn data_free_workflows_move_no_bytes() {
    for b in Benchmark::ALL {
        let wf = without_data(&b.workflow());
        let mut cluster = Cluster::new(faasflow(true)).expect("valid config");
        cluster
            .register(&wf, ClientConfig::ClosedLoop { invocations: 3 })
            .expect("registers");
        cluster.run_until_idle();
        let report = cluster.report();
        let w = report.workflow(&wf.name);
        assert_eq!(w.remote_bytes + w.local_bytes, 0, "{b} moved bytes");
        assert_eq!(w.bytes_moved.mean, 0.0);
    }
}

#[test]
fn timeout_bound_is_respected_in_reports() {
    // Even a pathological run never reports e2e above the 60 s cap + the
    // tail of late completions being excluded.
    let config = ClusterConfig {
        storage_bandwidth: 5e6,
        ..hyperflow()
    };
    let mut cluster = Cluster::new(config).expect("valid config");
    cluster
        .register(
            &Benchmark::Cycles.workflow(),
            ClientConfig::OpenLoop {
                per_minute: 6.0,
                invocations: 5,
            },
        )
        .expect("registers");
    cluster.run_until_idle();
    let w = cluster.report().workflow("Cyc").clone();
    assert!(w.e2e.max <= 60_000.0 + 1.0, "timeouts cap the histogram");
}
