//! The `workflows/` JSON corpus shipped for the CLI must stay valid: every
//! file parses, validates, partitions, and runs.

use faasflow::core::{ClientConfig, Cluster, ClusterConfig};
use faasflow::wdl::{DagParser, Workflow};

fn corpus() -> Vec<(String, Workflow)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/workflows");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).expect("workflows/ exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable file");
        let wf: Workflow = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("{path:?} is not a workflow: {e}"));
        out.push((path.display().to_string(), wf));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

#[test]
fn corpus_is_nonempty_and_parses() {
    let corpus = corpus();
    assert!(corpus.len() >= 9, "expected the 8 benchmarks + demo");
    let parser = DagParser::default();
    for (path, wf) in &corpus {
        let dag = parser.parse(wf).unwrap_or_else(|e| panic!("{path}: {e}"));
        assert!(dag.function_count() > 0, "{path}");
    }
}

#[test]
fn corpus_workflows_run_to_completion() {
    let mut cluster = Cluster::new(ClusterConfig::default()).expect("valid config");
    let corpus = corpus();
    for (path, wf) in &corpus {
        cluster
            .register(wf, ClientConfig::ClosedLoop { invocations: 2 })
            .unwrap_or_else(|e| panic!("{path}: {e}"));
    }
    cluster.run_until_idle();
    let report = cluster.report();
    for (path, wf) in &corpus {
        assert_eq!(report.workflow(&wf.name).completed, 2, "{path}");
    }
}

#[test]
fn corpus_matches_the_benchmark_definitions() {
    // The shipped JSON files are generated from `faasflow-workloads`; they
    // must stay in sync with the code.
    for b in faasflow::workloads::Benchmark::ALL {
        let path = format!(
            "{}/workflows/{}.json",
            env!("CARGO_MANIFEST_DIR"),
            b.short_name().to_lowercase()
        );
        let text = std::fs::read_to_string(&path).expect("benchmark json exists");
        let on_disk: Workflow = serde_json::from_str(&text).expect("parses");
        assert_eq!(
            on_disk,
            b.workflow(),
            "{path} is stale; regenerate with serde_json::to_string_pretty(&b.workflow())"
        );
    }
}
