//! Authoring workflows: every WDL step type (task, sequence, parallel,
//! switch, foreach), the raw-DAG form, and the serde (JSON) round trip that
//! stands in for the paper's `workflow.yaml`.
//!
//! ```sh
//! cargo run --example custom_workflow
//! ```

use faasflow::core::{ClientConfig, Cluster, ClusterConfig, ClusterError};
use faasflow::wdl::{DagParser, DagSpec, FunctionProfile, Step, SwitchCase, Workflow};

fn main() -> Result<(), ClusterError> {
    let p = |ms, out| FunctionProfile::with_millis(ms, out);

    // --- Hierarchical form: all five logic steps ----------------------
    let order_pipeline = Workflow::steps(
        "order-pipeline",
        Step::sequence(vec![
            Step::task("validate", p(20, 1 << 20)),
            // One arm per payment method runs per invocation.
            Step::switch(vec![
                SwitchCase::new("card", Step::task("charge_card", p(120, 64 << 10))),
                SwitchCase::new("invoice", Step::task("issue_invoice", p(60, 64 << 10))),
                SwitchCase::new(
                    "voucher",
                    Step::sequence(vec![
                        Step::task("check_voucher", p(30, 16 << 10)),
                        Step::task("redeem", p(40, 16 << 10)),
                    ]),
                ),
            ]),
            // Fulfilment and notification do not depend on each other.
            Step::parallel(vec![
                Step::task("reserve_stock", p(90, 256 << 10)),
                Step::task("send_email", p(150, 0)),
            ]),
            // Pick, label and pack each parcel of the order.
            Step::foreach("pack_parcel", p(200, 2 << 20), 4),
            Step::task("manifest", p(45, 0)),
        ]),
    );

    // --- Raw DAG form (what Pegasus instances look like) ---------------
    let mut diamond = DagSpec::new();
    diamond
        .task("fetch", p(25, 4 << 20))
        .task("thumbnail", p(110, 1 << 20))
        .task("classify", p(180, 64 << 10))
        .task("index", p(35, 0))
        .edge("fetch", "thumbnail")
        .edge("fetch", "classify")
        .edge("thumbnail", "index")
        .edge("classify", "index");
    let media = Workflow::dag("media-indexer", diamond);

    // --- Serde round trip (JSON stands in for workflow.yaml) -----------
    let json = serde_json::to_string_pretty(&order_pipeline).expect("serializable");
    println!(
        "order-pipeline serializes to {} bytes of JSON; first lines:\n{}\n...",
        json.len(),
        json.lines().take(6).collect::<Vec<_>>().join("\n"),
    );
    let parsed_back: Workflow = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(parsed_back, order_pipeline);

    // The parser reports structural statistics before any execution.
    let dag = DagParser::default()
        .parse(&order_pipeline)
        .expect("valid WDL");
    println!(
        "order-pipeline: {} functions, {} DAG nodes (incl. virtual brackets), {} control edges, {} data edges\n",
        dag.function_count(),
        dag.node_count(),
        dag.edges().len(),
        dag.data_edges().len(),
    );

    // --- Run both on one cluster --------------------------------------
    let mut cluster = Cluster::new(ClusterConfig::default())?;
    cluster.register(
        &order_pipeline,
        ClientConfig::ClosedLoop { invocations: 60 },
    )?;
    cluster.register(&media, ClientConfig::ClosedLoop { invocations: 60 })?;
    cluster.run_until_idle();

    let report = cluster.report();
    for name in ["order-pipeline", "media-indexer"] {
        let w = report.workflow(name);
        println!(
            "{name:<16} completed {:>3}   e2e mean {:>7.1} ms   p99 {:>7.1} ms",
            w.completed, w.e2e.mean, w.e2e.p99
        );
    }
    Ok(())
}
