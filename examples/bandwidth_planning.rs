//! Capacity planning with the simulator: how much storage-node bandwidth
//! does a workload need, and what does FaaStore buy back?
//!
//! Reproduces the spirit of §6's implication — "deploying servers with
//! larger main memory is more beneficial than upgrading the network" — by
//! sweeping the storage NIC and comparing it against simply enabling
//! FaaStore's reclaimed-memory data passing.
//!
//! ```sh
//! cargo run --release --example bandwidth_planning
//! ```

use faasflow::core::{ClientConfig, Cluster, ClusterConfig, ClusterError, ScheduleMode};
use faasflow::workloads::Benchmark;

fn p99(mode: ScheduleMode, faastore: bool, bandwidth: f64) -> Result<f64, ClusterError> {
    let config = ClusterConfig {
        mode,
        faastore,
        storage_bandwidth: bandwidth,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(config)?;
    let wf = Benchmark::WordCount.workflow();
    let id = cluster.register(&wf, ClientConfig::ClosedLoop { invocations: 2 })?;
    cluster.run_until_idle();
    cluster.reset_metrics();
    // Open loop at 6/min, the Figure 13 operating point.
    cluster.switch_to_open_loop(id, 6.0, 80);
    cluster.run_until_idle();
    Ok(cluster.report().workflow("WC").e2e.p99)
}

fn main() -> Result<(), ClusterError> {
    println!("Word Count p99 (ms) at 6 invocations/min\n");
    println!(
        "{:<12} {:>22} {:>20}",
        "storage NIC", "HyperFlow-serverless", "FaaSFlow-FaaStore"
    );
    println!("{}", "-".repeat(56));
    for bw in [25e6, 50e6, 75e6, 100e6] {
        let baseline = p99(ScheduleMode::MasterSp, false, bw)?;
        let faasflow = p99(ScheduleMode::WorkerSp, true, bw)?;
        println!(
            "{:<12} {:>22.0} {:>20.0}",
            format!("{:.0} MB/s", bw / 1e6),
            baseline,
            faasflow
        );
    }
    println!("{}", "-".repeat(56));
    println!("Reading the table: find the bandwidth where the baseline matches");
    println!("FaaSFlow-FaaStore's p99 at 25 MB/s — that gap is the network upgrade");
    println!("the reclaimed container memory replaces (1.5x-4x in the paper).");
    Ok(())
}
