//! A scalability study with the parameterizable topology generators:
//! how do the three topology families behave as the workflow grows from
//! 26 to 302 functions, under WorkerSP + FaaStore?
//!
//! ```sh
//! cargo run --release --example scaling_study
//! ```

use faasflow::core::{ClientConfig, Cluster, ClusterConfig, ClusterError};
use faasflow::wdl::Workflow;
use faasflow::workloads::generators::{chain_ensemble, cross_coupled, map_pipeline, StageProfile};

fn measure(wf: &Workflow) -> Result<(f64, f64, f64), ClusterError> {
    let config = ClusterConfig {
        // Big instances need head-room in the partitioner's Cap[node].
        partition_capacity: 64,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(config)?;
    let id = cluster.register(wf, ClientConfig::ClosedLoop { invocations: 2 })?;
    cluster.run_until_idle();
    cluster.reset_metrics();
    cluster.extend_client(id, 15);
    cluster.run_until_idle();
    let report = cluster.report();
    let w = report.workflow(&wf.name);
    let local = 100.0 * w.local_bytes as f64 / (w.local_bytes + w.remote_bytes).max(1) as f64;
    Ok((w.e2e.mean, w.transfer_total.mean / 1000.0, local))
}

fn main() -> Result<(), ClusterError> {
    let stage = StageProfile {
        exec_ms: 120,
        output_bytes: 2 << 20,
    };
    println!(
        "{:<16} {:>6} {:>10} {:>12} {:>8}",
        "topology", "fns", "e2e (ms)", "transfer(s)", "local%"
    );
    println!("{}", "-".repeat(58));
    for scale in [2usize, 6, 12, 25] {
        let families: Vec<(&str, Workflow)> = vec![
            (
                "chain-ensemble",
                chain_ensemble("chain-ensemble", scale, 4, stage),
            ),
            (
                "map-pipeline",
                map_pipeline("map-pipeline", scale, 4, stage),
            ),
            (
                "cross-coupled",
                cross_coupled("cross-coupled", scale * 3, scale, 3.min(scale * 3), stage),
            ),
        ];
        for (label, wf) in families {
            let fns = match &wf.spec {
                faasflow::wdl::WorkflowSpec::Dag(d) => d.tasks.len(),
                _ => unreachable!("generators emit raw DAGs"),
            };
            let (e2e, transfer, local) = measure(&wf)?;
            println!(
                "{:<16} {:>6} {:>10.0} {:>12.2} {:>7.1}%",
                label, fns, e2e, transfer, local
            );
        }
        println!();
    }
    println!("chains keep locality as they grow; cross-coupled topologies lose it —");
    println!("the Table 4 spectrum, reproduced as a parameter sweep.");
    Ok(())
}
