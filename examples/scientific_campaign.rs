//! A scientific-workflow campaign: run the four Pegasus benchmarks under a
//! bandwidth-constrained storage node and watch the graph partitioner keep
//! the heavy intermediate data on-node.
//!
//! Also demonstrates the feedback loop: partition iterations re-run every
//! 25 completed invocations using the observed `Scale(v)` / edge latencies
//! (§4.1.2's "partition iteration").
//!
//! ```sh
//! cargo run --release --example scientific_campaign
//! ```

use faasflow::core::{ClientConfig, Cluster, ClusterConfig, ClusterError};
use faasflow::workloads::Benchmark;

fn main() -> Result<(), ClusterError> {
    let config = ClusterConfig {
        storage_bandwidth: 50e6, // the paper's default throttle
        repartition_every: Some(25),
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(config)?;

    let mut ids = Vec::new();
    for b in Benchmark::SCIENTIFIC {
        let id = cluster.register(&b.workflow(), ClientConfig::ClosedLoop { invocations: 2 })?;
        ids.push((b, id));
    }
    cluster.run_until_idle();
    cluster.reset_metrics();
    for &(_, id) in &ids {
        cluster.extend_client(id, 60);
    }
    cluster.run_until_idle();

    let report = cluster.report();
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>9} {:>9}",
        "workflow", "e2e (ms)", "p99 (ms)", "transfer(s)", "local %", "workers"
    );
    println!("{}", "-".repeat(72));
    for (b, id) in ids {
        let w = report.workflow(b.short_name());
        let dist = cluster.distribution(id);
        println!(
            "{:<14} {:>10.0} {:>12.0} {:>12.2} {:>8.1}% {:>9}",
            b.full_name(),
            w.e2e.mean,
            w.e2e.p99,
            w.transfer_total.mean / 1000.0,
            100.0 * w.local_bytes as f64 / (w.local_bytes + w.remote_bytes).max(1) as f64,
            dist.len(),
        );
    }
    let (wall, runs) = cluster.partition_wall_time();
    println!("{}", "-".repeat(72));
    println!(
        "graph scheduler: {runs} partition iterations, {:.2} ms total wall time",
        wall * 1000.0
    );
    println!(
        "storage-node traffic: {:.1} MB ({:.2} MB/s effective)",
        report.storage_node_bytes as f64 / 1048576.0,
        report.storage_bandwidth_used() / 1e6
    );
    Ok(())
}
