//! Structured tracing: watch one invocation flow through WorkerSP — which
//! worker triggers what, where the data lands, and which state syncs cross
//! the network — then fold the same events into causal span trees, a
//! latency-attribution table, the observed critical path of each
//! invocation, and what-if speedup bounds.
//!
//! ```sh
//! cargo run --example trace_timeline
//! ```

use faasflow::core::trace::render_timeline;
use faasflow::core::{
    ClientConfig, Cluster, ClusterConfig, ClusterError, DegradeConfig, SloConfig, SloObjective,
};
use faasflow::obs::{
    aggregate, attribute, build_forest, extract, render_attribution_table, what_if, SpanKind,
};
use faasflow::workloads::Benchmark;

fn main() -> Result<(), ClusterError> {
    // An impossible 1 ms objective with single-completion windows makes
    // the burn-rate alert fire on the very first invocation, so the
    // timeline also shows the SLO alert edge and the degradation
    // controller throttling the workflow in response. Neither subsystem
    // draws randomness, so the rest of the timeline is unchanged.
    let config = ClusterConfig {
        trace: true,
        slo: Some(SloConfig {
            objectives: vec![SloObjective {
                workflow: "FP".to_string(),
                target: faasflow::sim::SimDuration::from_millis(1),
                error_budget: 0.5,
                fast_window: 1,
                slow_window: 1,
                fast_burn: 1.0,
                slow_burn: 1.0,
                ..SloObjective::default()
            }],
        }),
        degrade: Some(DegradeConfig::default()),
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(config)?;
    cluster.register(
        &Benchmark::FileProcessing.workflow(),
        ClientConfig::ClosedLoop { invocations: 2 },
    )?;
    cluster.run_until_idle();

    // `trace()` borrows the buffer without consuming it, so the cluster
    // stays usable for names and reports below.
    let events = cluster.trace();
    println!(
        "File Processing under WorkerSP + FaaStore ({} trace events):\n",
        events.len()
    );
    print!("{}", render_timeline(events));
    println!("\n(second invocation reuses warm containers — compare the start lines)");

    // The same stream, assembled into causal span trees.
    let forest = build_forest(events);
    forest.validate().expect("span forest well-formed");
    let tree = &forest.trees[0];
    println!(
        "\nspan tree of the first invocation ({} spans, e2e {:.1} ms):",
        tree.spans.len(),
        tree.e2e().as_millis_f64()
    );
    for (idx, span) in tree.spans.iter().enumerate() {
        let depth = std::iter::successors(Some(idx), |&i| tree.spans[i].parent).count() - 1;
        let marker = match span.kind {
            SpanKind::Invocation => "inv ",
            SpanKind::Function => "fn  ",
            SpanKind::Provision { .. } => "prov",
            SpanKind::Exec { .. } => "exec",
            SpanKind::Transfer { .. } => "xfer",
        };
        println!(
            "  {:indent$}{marker} {:<24} {:>8.2} ms",
            "",
            span.label,
            span.duration().as_millis_f64(),
            indent = depth * 2
        );
    }

    // The observed critical path: the chain of segments that actually
    // gated completion. Its segments sum exactly to the e2e above.
    let paths = extract(&forest);
    let path = &paths[0];
    path.validate(tree).expect("chain sums to the makespan");
    println!(
        "\nobserved critical path of the first invocation ({:.1} ms total):",
        path.total().as_millis_f64()
    );
    for seg in &path.segments {
        let label = match seg.span {
            Some(idx) => tree.spans[idx].label.as_str(),
            None => "-",
        };
        println!(
            "  {:<9} {:<24} {:>8.2} ms",
            seg.phase.label(),
            label,
            seg.duration().as_millis_f64()
        );
    }

    // Where did the milliseconds go?
    let rows = attribute(&forest);
    println!("\nphase attribution (mean ms per invocation):");
    print!(
        "{}",
        render_attribution_table(&[("WorkerSP".to_string(), rows)], |wf| {
            cluster
                .workflow_name(wf)
                .expect("registered workflow")
                .to_string()
        })
    );

    // What could an optimization buy, at most?
    let breakdown = aggregate(&paths);
    let bounds = what_if(&breakdown[0]);
    let n = bounds.invocations.max(1) as f64;
    println!(
        "\nwhat-if bounds (mean over {} invocations, observed {:.1} ms):",
        bounds.invocations,
        bounds.observed_ms / n
    );
    for b in &bounds.bounds {
        println!(
            "  {:<9} -> at best {:>8.1} ms ({:.2}x speedup)",
            b.scenario.label(),
            b.bound_ms / n,
            b.speedup
        );
    }
    println!("(bounds are Amdahl limits: removing a phase can never beat exec-only)");
    Ok(())
}
