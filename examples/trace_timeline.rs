//! Structured tracing: watch one invocation flow through WorkerSP — which
//! worker triggers what, where the data lands, and which state syncs cross
//! the network — then fold the same events into causal span trees and a
//! latency-attribution table.
//!
//! ```sh
//! cargo run --example trace_timeline
//! ```

use faasflow::core::trace::render_timeline;
use faasflow::core::{ClientConfig, Cluster, ClusterConfig, ClusterError};
use faasflow::obs::{attribute, build_forest, render_attribution_table, SpanKind};
use faasflow::workloads::Benchmark;

fn main() -> Result<(), ClusterError> {
    let config = ClusterConfig {
        trace: true,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(config)?;
    cluster.register(
        &Benchmark::FileProcessing.workflow(),
        ClientConfig::ClosedLoop { invocations: 2 },
    )?;
    cluster.run_until_idle();

    let events = cluster.take_trace();
    println!(
        "File Processing under WorkerSP + FaaStore ({} trace events):\n",
        events.len()
    );
    print!("{}", render_timeline(&events));
    println!("\n(second invocation reuses warm containers — compare the start lines)");

    // The same stream, assembled into causal span trees.
    let forest = build_forest(&events);
    forest.validate().expect("span forest well-formed");
    let tree = &forest.trees[0];
    println!(
        "\nspan tree of the first invocation ({} spans, e2e {:.1} ms):",
        tree.spans.len(),
        tree.e2e().as_millis_f64()
    );
    for (idx, span) in tree.spans.iter().enumerate() {
        let depth = std::iter::successors(Some(idx), |&i| tree.spans[i].parent).count() - 1;
        let marker = match span.kind {
            SpanKind::Invocation => "inv ",
            SpanKind::Function => "fn  ",
            SpanKind::Provision { .. } => "prov",
            SpanKind::Exec { .. } => "exec",
            SpanKind::Transfer { .. } => "xfer",
        };
        println!(
            "  {:indent$}{marker} {:<24} {:>8.2} ms",
            "",
            span.label,
            span.duration().as_millis_f64(),
            indent = depth * 2
        );
    }

    // Where did the milliseconds go?
    let rows = attribute(&forest);
    println!("\nphase attribution (mean ms per invocation):");
    print!(
        "{}",
        render_attribution_table(&[("WorkerSP".to_string(), rows)], |wf| {
            cluster
                .workflow_name(wf)
                .expect("registered workflow")
                .to_string()
        })
    );
    Ok(())
}
