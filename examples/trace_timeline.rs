//! Structured tracing: watch one invocation flow through WorkerSP — which
//! worker triggers what, where the data lands, and which state syncs cross
//! the network.
//!
//! ```sh
//! cargo run --example trace_timeline
//! ```

use faasflow::core::trace::render_timeline;
use faasflow::core::{ClientConfig, Cluster, ClusterConfig, ClusterError};
use faasflow::workloads::Benchmark;

fn main() -> Result<(), ClusterError> {
    let config = ClusterConfig {
        trace: true,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(config)?;
    cluster.register(
        &Benchmark::FileProcessing.workflow(),
        ClientConfig::ClosedLoop { invocations: 2 },
    )?;
    cluster.run_until_idle();

    let events = cluster.take_trace();
    println!(
        "File Processing under WorkerSP + FaaStore ({} trace events):\n",
        events.len()
    );
    print!("{}", render_timeline(&events));
    println!("\n(second invocation reuses warm containers — compare the start lines)");
    Ok(())
}
