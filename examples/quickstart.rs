//! Quickstart: define a workflow, run it on the simulated FaaSFlow cluster,
//! and read the report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use faasflow::core::{ClientConfig, Cluster, ClusterConfig, ClusterError};
use faasflow::wdl::{FunctionProfile, Step, Workflow};

fn main() -> Result<(), ClusterError> {
    // A 7-worker FaaSFlow cluster with WorkerSP scheduling and FaaStore
    // hybrid storage — the paper's default configuration.
    let mut cluster = Cluster::new(ClusterConfig::default())?;

    // A three-stage ETL pipeline: extract produces 16 MB consumed by a
    // fan-out of two transforms, whose results are merged.
    let workflow = Workflow::steps(
        "etl",
        Step::sequence(vec![
            Step::task("extract", FunctionProfile::with_millis(80, 16 << 20)),
            Step::parallel(vec![
                Step::task("clean", FunctionProfile::with_millis(150, 8 << 20)),
                Step::task("enrich", FunctionProfile::with_millis(220, 4 << 20)),
            ]),
            Step::task("load", FunctionProfile::with_millis(60, 0)),
        ]),
    );

    // A closed-loop client: one invocation in flight at a time.
    cluster.register(&workflow, ClientConfig::ClosedLoop { invocations: 100 })?;

    // Run the discrete-event simulation to completion.
    let end = cluster.run_until_idle();

    let report = cluster.report();
    let etl = report.workflow("etl");
    println!("simulated {:.1}s of cluster time", end.as_secs_f64());
    println!("completed: {} invocations", etl.completed);
    println!("mean end-to-end latency : {:>8.1} ms", etl.e2e.mean);
    println!("p99 end-to-end latency  : {:>8.1} ms", etl.e2e.p99);
    println!(
        "scheduling overhead     : {:>8.1} ms",
        etl.sched_overhead.mean
    );
    println!(
        "data locality           : {:>8.1} % of bytes passed in memory",
        100.0 * etl.local_bytes as f64 / (etl.local_bytes + etl.remote_bytes).max(1) as f64
    );
    println!(
        "throughput              : {:>8.1} invocations/min",
        etl.throughput_per_min
    );
    Ok(())
}
