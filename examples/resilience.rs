//! Operating under faults: transient function failures with bounded retry,
//! and QoS-triggered partition iterations (§4.1.2) reacting to the
//! degradation.
//!
//! ```sh
//! cargo run --release --example resilience
//! ```

use faasflow::core::{ClientConfig, Cluster, ClusterConfig, ClusterError};
use faasflow::sim::SimDuration;
use faasflow::workloads::Benchmark;

fn run(failure_rate: f64, qos_ms: Option<u64>) -> Result<(), ClusterError> {
    let config = ClusterConfig {
        exec_failure_rate: failure_rate,
        max_exec_retries: 3,
        qos_target: qos_ms.map(SimDuration::from_millis),
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(config)?;
    cluster.register(
        &Benchmark::WordCount.workflow(),
        ClientConfig::ClosedLoop { invocations: 60 },
    )?;
    cluster.run_until_idle();
    let report = cluster.report();
    let w = report.workflow("WC");
    let (_, partitions) = cluster.partition_wall_time();
    println!(
        "failures {:>4.0}%  qos {}  ->  e2e {:>7.1} ms  p99 {:>7.1} ms  retries {:>4}  partition iterations {:>2}",
        failure_rate * 100.0,
        match qos_ms {
            Some(ms) => format!("{ms:>5} ms"),
            None => "   none".to_string(),
        },
        w.e2e.mean,
        w.e2e.p99,
        report.exec_retries,
        partitions,
    );
    Ok(())
}

fn main() -> Result<(), ClusterError> {
    println!("Word Count, 60 closed-loop invocations:\n");
    run(0.0, None)?;
    run(0.2, None)?;
    run(0.4, None)?;
    println!();
    // A QoS target between the healthy and degraded latencies: failures
    // push invocations over it, and each violation triggers a feedback
    // partition iteration with fresh Scale/latency metrics.
    run(0.4, Some(1200))?;
    println!("\nretries inflate latency; QoS violations wake the Graph Scheduler.");
    Ok(())
}
