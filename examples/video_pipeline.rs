//! The paper's motivating workload: parallel video transcoding
//! (Video-FFmpeg, Alibaba Function Compute use case), compared across the
//! three system configurations of the evaluation:
//!
//! 1. HyperFlow-serverless — the MasterSP baseline,
//! 2. FaaSFlow — WorkerSP scheduling, remote store only,
//! 3. FaaSFlow-FaaStore — WorkerSP plus hybrid in-memory data passing.
//!
//! ```sh
//! cargo run --release --example video_pipeline
//! ```

use faasflow::core::{ClientConfig, Cluster, ClusterConfig, ClusterError, ScheduleMode};
use faasflow::workloads::Benchmark;

fn run(label: &str, mode: ScheduleMode, faastore: bool) -> Result<(), ClusterError> {
    let config = ClusterConfig {
        mode,
        faastore,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(config)?;
    let vid = Benchmark::VideoFfmpeg.workflow();
    let id = cluster.register(&vid, ClientConfig::ClosedLoop { invocations: 3 })?;

    // Warm the containers, then measure 50 steady-state invocations.
    cluster.run_until_idle();
    cluster.reset_metrics();
    cluster.extend_client(id, 50);
    cluster.run_until_idle();

    let report = cluster.report();
    let w = report.workflow("Vid");
    println!(
        "{label:<22} e2e {:>7.0} ms   transfer {:>7.2} s   local {:>5.1}%   syncs {:>4}   master msgs {:>4}",
        w.e2e.mean,
        w.transfer_total.mean / 1000.0,
        100.0 * w.local_bytes as f64 / (w.local_bytes + w.remote_bytes).max(1) as f64,
        report.worker_syncs,
        report.master_tasks_assigned + report.master_state_returns,
    );
    Ok(())
}

fn main() -> Result<(), ClusterError> {
    println!("Video-FFmpeg: probe -> split -> 6x transcode (foreach) -> merge -> upload\n");
    run("HyperFlow-serverless", ScheduleMode::MasterSp, false)?;
    run("FaaSFlow", ScheduleMode::WorkerSp, false)?;
    run("FaaSFlow-FaaStore", ScheduleMode::WorkerSp, true)?;
    println!("\nWorkerSP removes the task-assignment round-trips (master msgs -> 0);");
    println!("FaaStore keeps the split video chunks in worker memory (local% > 0).");
    Ok(())
}
