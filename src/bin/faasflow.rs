//! `faasflow` — command-line front end for the simulated cluster.
//!
//! ```text
//! faasflow validate <workflow.json>...
//!     Parse and validate workflow definition files; print DAG statistics.
//!
//! faasflow partition <workflow.json> [--workers N] [--capacity C]
//!     Run the Graph Scheduler (Algorithm 1) and print the grouping,
//!     placement, and storage classes.
//!
//! faasflow run <workflow.json>... [options]
//!     Simulate the workflows on a cluster and print the report.
//!
//!     --mode worker|master        schedule pattern        [worker]
//!     --no-faastore               disable hybrid storage
//!     --workers N                 worker nodes            [7]
//!     --bandwidth MB/s            storage-node NIC        [50]
//!     --invocations N             per workflow            [50]
//!     --rate PER_MIN              open loop at this rate  (closed loop)
//!     --seed S                    simulation seed
//!
//! faasflow bench <workflow.json> [--invocations N]
//!     Compare the three system configurations on one workflow.
//! ```
//!
//! Workflow files are either the serde/JSON form of
//! [`faasflow::wdl::Workflow`] (`.json`) or the compact text format of
//! [`faasflow::wdl::text`] (`.wdl`) — see `workflows/` for examples of
//! both; together they stand in for the paper's `workflow.yaml`.

use std::process::ExitCode;

use faasflow::core::{ClientConfig, Cluster, ClusterConfig, ScheduleMode};
use faasflow::scheduler::{ContentionSet, GraphScheduler, RuntimeMetrics, WorkerInfo};
use faasflow::sim::{NodeId, SimRng};
use faasflow::store::quota;
use faasflow::wdl::{DagParser, Workflow};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("usage: faasflow <validate|partition|run|bench> ... (see --help)");
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "validate" => cmd_validate(rest),
        "partition" => cmd_partition(rest),
        "run" => cmd_run(rest),
        "bench" => cmd_bench(rest),
        "--help" | "-h" | "help" => {
            println!("{}", HELP);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const HELP: &str = "faasflow — simulated FaaSFlow cluster (see module docs in src/bin/faasflow.rs)

commands:
  validate <workflow.json>...   parse + validate, print DAG statistics
  partition <workflow.json>     run Algorithm 1, print groups & placement
  run <workflow.json>...        simulate and report
  bench <workflow.json>         compare MasterSP / WorkerSP / +FaaStore";

fn load(path: &str) -> Result<Workflow, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    if path.ends_with(".wdl") {
        faasflow::wdl::text::parse_text(&text).map_err(|e| format!("`{path}`: {e}"))
    } else {
        serde_json::from_str(&text).map_err(|e| format!("`{path}` is not a workflow: {e}"))
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag_value(args, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value `{v}` for {name}")),
    }
}

fn files(args: &[String]) -> Vec<&String> {
    // Positional arguments: everything not a flag or a flag value.
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = !matches!(a.as_str(), "--no-faastore");
            continue;
        }
        out.push(a);
    }
    out
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    let paths = files(args);
    if paths.is_empty() {
        return Err("validate needs at least one workflow file".into());
    }
    let parser = DagParser::default();
    for path in paths {
        let wf = load(path)?;
        let dag = parser
            .parse(&wf)
            .map_err(|e| format!("`{path}`: invalid workflow: {e}"))?;
        let (cp_nodes, _) = dag.critical_path();
        println!(
            "{path}: `{}` OK — {} functions ({} DAG nodes), {} control edges, \
             {} data edges, {:.2} MB/invocation, critical path {} nodes \
             ({:.0} ms exec), quota {:.1} MB",
            wf.name,
            dag.function_count(),
            dag.node_count(),
            dag.edges().len(),
            dag.data_edges().len(),
            dag.total_data_bytes() as f64 / 1048576.0,
            cp_nodes.len(),
            dag.critical_path_exec().as_millis_f64(),
            quota::workflow_quota(&dag, 32 << 20) as f64 / 1048576.0,
        );
    }
    Ok(())
}

fn cmd_partition(args: &[String]) -> Result<(), String> {
    let paths = files(args);
    let [path] = paths.as_slice() else {
        return Err("partition needs exactly one workflow file".into());
    };
    let workers: u32 = parse_flag(args, "--workers", 7)?;
    let capacity: u32 = parse_flag(args, "--capacity", 12)?;
    let seed: u64 = parse_flag(args, "--seed", 0xFAA5_F10E_u64)?;

    let wf = load(path)?;
    let dag = DagParser::default().parse(&wf).map_err(|e| e.to_string())?;
    let infos: Vec<WorkerInfo> = (0..workers)
        .map(|i| WorkerInfo::new(NodeId::new(i + 1), capacity))
        .collect();
    let q = quota::workflow_quota(&dag, 32 << 20);
    let mut rng = SimRng::seed_from(seed);
    let assignment = GraphScheduler::default()
        .partition(
            &dag,
            &infos,
            &RuntimeMetrics::initial(&dag),
            &ContentionSet::default(),
            q,
            &mut rng,
        )
        .map_err(|e| e.to_string())?;

    println!(
        "`{}`: {} groups on {} workers; localized {:.1} of {:.1} MB quota",
        wf.name,
        assignment.groups.len(),
        assignment
            .groups
            .iter()
            .map(|g| g.worker)
            .collect::<std::collections::BTreeSet<_>>()
            .len(),
        assignment.mem_consume as f64 / 1048576.0,
        q as f64 / 1048576.0,
    );
    for g in &assignment.groups {
        let members: Vec<String> = g
            .members
            .iter()
            .map(|&m| {
                let node = dag.node(m);
                let tag = if assignment.storage_local[m.index()] {
                    "*"
                } else {
                    ""
                };
                format!("{}{}", node.name, tag)
            })
            .collect();
        println!(
            "  {} on {} (demand {:>3}): {}",
            g.id,
            g.worker,
            g.capacity_needed,
            members.join(", ")
        );
    }
    println!("(* = output may reside in local memory)");
    Ok(())
}

fn cluster_config(args: &[String]) -> Result<ClusterConfig, String> {
    let mode = match flag_value(args, "--mode").unwrap_or("worker") {
        "worker" => ScheduleMode::WorkerSp,
        "master" => ScheduleMode::MasterSp,
        other => return Err(format!("unknown mode `{other}` (worker|master)")),
    };
    let faastore = mode == ScheduleMode::WorkerSp && !args.iter().any(|a| a == "--no-faastore");
    Ok(ClusterConfig {
        mode,
        faastore,
        workers: parse_flag(args, "--workers", 7)?,
        storage_bandwidth: parse_flag(args, "--bandwidth", 50.0)? * 1e6,
        seed: parse_flag(args, "--seed", 0xFAA5_F10E_u64)?,
        ..ClusterConfig::default()
    })
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let paths = files(args);
    if paths.is_empty() {
        return Err("run needs at least one workflow file".into());
    }
    let config = cluster_config(args)?;
    let invocations: u32 = parse_flag(args, "--invocations", 50)?;
    let rate: f64 = parse_flag(args, "--rate", 0.0)?;

    let mut cluster = Cluster::new(config).map_err(|e| e.to_string())?;
    let mut names = Vec::new();
    for path in paths {
        let wf = load(path)?;
        let client = if rate > 0.0 {
            ClientConfig::OpenLoop {
                per_minute: rate,
                invocations,
            }
        } else {
            ClientConfig::ClosedLoop { invocations }
        };
        names.push(wf.name.clone());
        cluster
            .register(&wf, client)
            .map_err(|e| format!("`{path}`: {e}"))?;
    }
    let end = cluster.run_until_idle();
    let report = cluster.report();
    println!("simulated {:.1} s", end.as_secs_f64());
    println!(
        "{:<20} {:>6} {:>9} {:>9} {:>9} {:>11} {:>8}",
        "workflow", "done", "mean(ms)", "p99(ms)", "ovh(ms)", "transfer(s)", "local%"
    );
    for name in names {
        let w = report.workflow(&name);
        println!(
            "{:<20} {:>6} {:>9.1} {:>9.1} {:>9.1} {:>11.2} {:>7.1}%",
            name,
            w.completed,
            w.e2e.mean,
            w.e2e.p99,
            w.sched_overhead.mean,
            w.transfer_total.mean / 1000.0,
            100.0 * w.local_bytes as f64 / (w.local_bytes + w.remote_bytes).max(1) as f64,
        );
    }
    println!(
        "cluster: {} cold / {} warm starts, {} syncs, {} master msgs, storage NIC {:.1} MB",
        report.cold_starts,
        report.warm_starts,
        report.worker_syncs,
        report.master_tasks_assigned + report.master_state_returns,
        report.storage_node_bytes as f64 / 1048576.0,
    );
    Ok(())
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let paths = files(args);
    let [path] = paths.as_slice() else {
        return Err("bench needs exactly one workflow file".into());
    };
    let wf = load(path)?;
    let invocations: u32 = parse_flag(args, "--invocations", 50)?;
    println!(
        "{:<22} {:>9} {:>9} {:>11} {:>8}",
        "system", "mean(ms)", "p99(ms)", "transfer(s)", "local%"
    );
    for (label, mode, faastore) in [
        ("HyperFlow-serverless", ScheduleMode::MasterSp, false),
        ("FaaSFlow", ScheduleMode::WorkerSp, false),
        ("FaaSFlow-FaaStore", ScheduleMode::WorkerSp, true),
    ] {
        let config = ClusterConfig {
            mode,
            faastore,
            ..cluster_config(args)?
        };
        let mut cluster = Cluster::new(config).map_err(|e| e.to_string())?;
        cluster
            .register(&wf, ClientConfig::ClosedLoop { invocations })
            .map_err(|e| e.to_string())?;
        cluster.run_until_idle();
        let report = cluster.report();
        let w = report.workflow(&wf.name);
        println!(
            "{:<22} {:>9.1} {:>9.1} {:>11.2} {:>7.1}%",
            label,
            w.e2e.mean,
            w.e2e.p99,
            w.transfer_total.mean / 1000.0,
            100.0 * w.local_bytes as f64 / (w.local_bytes + w.remote_bytes).max(1) as f64,
        );
    }
    Ok(())
}
