//! # faasflow
//!
//! Umbrella crate for the FaaSFlow reproduction (ASPLOS '22). Re-exports the
//! public API of every workspace crate so applications can depend on a
//! single package:
//!
//! ```
//! use faasflow::sim::SimTime;
//! assert_eq!(SimTime::ZERO.as_nanos(), 0);
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every reproduced table and figure.

/// Discrete-event simulation kernel (time, events, rng, stats).
pub use faasflow_sim as sim;

/// Max-min fair flow network model.
pub use faasflow_net as net;

/// Container runtime model (cold/warm starts, keep-alive, caps).
pub use faasflow_container as container;

/// Storage substrates: remote KV store, per-node memstore, FaaStore.
pub use faasflow_store as store;

/// Workflow definition language and DAG parser.
pub use faasflow_wdl as wdl;

/// Graph scheduler: Algorithm 1 grouping and bin-packing.
pub use faasflow_scheduler as scheduler;

/// WorkerSP and MasterSP engines.
pub use faasflow_engine as engine;

/// Cluster simulation, invocation clients, and metrics.
pub use faasflow_core as core;

/// Observability: span trees, Chrome-trace/Prometheus exporters,
/// latency attribution.
pub use faasflow_obs as obs;

/// The eight evaluation benchmarks.
pub use faasflow_workloads as workloads;
