# The Alibaba Function Compute video use case, in the compact text format.
workflow video-pipeline

seq {
    task probe 120ms out 512KB mem 217MB
    task split 600ms out 48MB mem 217MB
    foreach transcode x6 1500ms out 32MB mem 217MB
    task merge 800ms out 12MB mem 217MB
    switch {
        case flagged { task blur 650ms mem 217MB }
        case clean   { task publish 80ms out 1MB mem 217MB }
    }
    task notify 30ms
}
